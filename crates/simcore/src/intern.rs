//! String interning for hot-path labels.
//!
//! Simulators label components, designs, and traces with short strings.
//! Carrying those as owned `String`s means an allocation per label per
//! event/evaluation and `clone()`s at every hand-off. Interning maps each
//! distinct label to a single leaked `&'static str`, so labels become
//! `Copy` pointers: comparisons are pointer-width, hand-offs are free,
//! and the hot paths allocate nothing.
//!
//! The pool only grows — appropriate for label sets that are small and
//! bounded (design names, component labels), not for unbounded
//! per-request data.
//!
//! # Example
//! ```
//! use wcs_simcore::intern::intern;
//! let a = intern("memory-blade");
//! let b = intern(&format!("memory-{}", "blade"));
//! assert!(std::ptr::eq(a, b), "same label, same allocation");
//! ```

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();

/// Returns the canonical `&'static str` for `s`, leaking at most one
/// allocation per distinct string for the life of the process.
///
/// Thread-safe; repeated calls with equal strings return the same
/// pointer.
pub fn intern(s: &str) -> &'static str {
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = pool.lock().expect("intern pool poisoned");
    if let Some(&found) = set.get(s) {
        return found;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("srvr1");
        let b = intern("srvr1");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "srvr1");
    }

    #[test]
    fn distinct_strings_stay_distinct() {
        let a = intern("N1");
        let b = intern("N2");
        assert_ne!(a, b);
    }

    #[test]
    fn dynamic_strings_collapse_to_one_allocation() {
        let ptrs: Vec<*const str> = (0..8)
            .map(|_| intern(&format!("N2-local{}%", 25)) as *const str)
            .collect();
        for p in &ptrs[1..] {
            assert!(std::ptr::eq(ptrs[0], *p));
        }
    }

    #[test]
    fn concurrent_interning_agrees() {
        let out = crate::pool::ThreadPool::new(8)
            .unwrap()
            .par_map(&[(); 64], |i, _| {
                intern(&format!("label-{}", i % 4)).as_ptr() as usize
            });
        for (i, p) in out.iter().enumerate() {
            assert_eq!(*p, out[i % 4], "same label interned to same pointer");
        }
    }
}
