//! Deterministic observability: named counters, histograms, and span
//! timers for every hot subsystem in the workspace.
//!
//! The paper's methodology is attribution: a Perf/TCO-$ difference must
//! be traceable to the mechanism that caused it (memory-blade faults,
//! flash hit ratios, cooling throttles). This module provides the
//! metrics layer that makes the simulators observable without making
//! them nondeterministic:
//!
//! * **Zero overhead when disabled.** A [`Registry`] is a handle around
//!   an `Option<Arc<..>>`; the disabled registry hands out empty handles
//!   whose record operations are a single branch on `None` and whose
//!   [`Timer`] never reads the clock. Every bench binary runs disabled
//!   unless `--metrics` is passed.
//! * **Deterministic by construction.** Exact-class metrics are recorded
//!   from *returned simulation values* (never from scheduling order) and
//!   merged with commutative, associative operations (sums for counters
//!   and histogram buckets, max for high-water gauges), so `--threads N`
//!   and `--no-memo` cannot change a single reported bit. Quantities
//!   that are inherently run-dependent — wall-clock spans, memo hit
//!   counts under racing workers — are tagged [`Class::Wall`] and
//!   excluded from the deterministic snapshot.
//! * **Stable export.** [`Snapshot`] holds metrics in a `BTreeMap`, so
//!   JSON ([`Snapshot::to_json`]) and Prometheus text
//!   ([`Snapshot::to_prometheus`]) render in stable name order on every
//!   platform.
//!
//! Worker threads may either record through clones of one registry
//! (handles share cells; atomic adds commute) or record into per-worker
//! [`Registry::fork`]s folded back with [`Registry::merge`], which is
//! associative and commutative — both strategies report identical
//! values.
//!
//! # Example
//! ```
//! use wcs_simcore::obs::Registry;
//! let reg = Registry::new();
//! let faults = reg.counter("memshare.page_faults");
//! faults.add(3);
//! let depth = reg.max_gauge("queue.max_depth");
//! depth.observe(17);
//! depth.observe(9);
//! let snap = reg.snapshot();
//! assert!(snap.to_json().contains("\"memshare.page_faults\""));
//! assert!(snap.to_prometheus().contains("queue_max_depth 17"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Determinism class of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Recorded from deterministic simulation values: bit-identical
    /// across thread counts and memoization settings.
    Exact,
    /// Wall-clock or scheduling-dependent (span timers, memo hit
    /// counters): reported for profiling, excluded from determinism
    /// comparisons.
    Wall,
}

impl Class {
    fn label(self) -> &'static str {
        match self {
            Class::Exact => "exact",
            Class::Wall => "wall",
        }
    }
}

/// Shape of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    MaxGauge,
    Histogram,
}

/// Number of log2 buckets: bucket `b` counts values `v` with
/// `bit_length(v) == b`, i.e. bucket 0 holds `v == 0`, bucket 1 holds
/// `v == 1`, bucket 11 holds `1024..=2047`, up to bucket 64.
const BUCKETS: usize = 65;

#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// One registered metric's storage. Counters use only `count`;
/// histograms use `count`, `sum`, and `buckets`; max gauges use `count`
/// as the running maximum.
#[derive(Debug)]
struct Cell {
    kind: Kind,
    class: Class,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Cell {
    fn new(kind: Kind, class: Class) -> Self {
        Cell {
            kind,
            class,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: match kind {
                Kind::Histogram => (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                _ => Vec::new(),
            },
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    cells: Mutex<BTreeMap<String, Arc<Cell>>>,
}

/// A handle to a metric registry. Cloning is cheap (an `Arc` bump) and
/// clones share cells: a counter registered under one clone accumulates
/// with the same-named counter of every other clone.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// The disabled registry: hands out no-op handles, records nothing,
    /// costs one branch per record call. This is the default everywhere.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Enabled iff `enabled` (`--metrics` plumbing).
    pub fn with_enabled(enabled: bool) -> Self {
        if enabled {
            Self::new()
        } else {
            Self::disabled()
        }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn cell(&self, name: &str, kind: Kind, class: Class) -> Option<Arc<Cell>> {
        let inner = self.inner.as_ref()?;
        let mut cells = inner.cells.lock().expect("obs registry");
        let cell = cells
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Cell::new(kind, class)));
        assert!(
            cell.kind == kind && cell.class == class,
            "metric {name:?} registered twice with different kind/class"
        );
        Some(Arc::clone(cell))
    }

    /// Registers (or retrieves) an exact-class monotonic counter.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.cell(name, Kind::Counter, Class::Exact))
    }

    /// Registers a wall-class counter — for quantities that legitimately
    /// vary run to run (memo hits under racing workers).
    pub fn wall_counter(&self, name: &str) -> Counter {
        Counter(self.cell(name, Kind::Counter, Class::Wall))
    }

    /// Registers an exact-class high-water gauge (merged by max).
    pub fn max_gauge(&self, name: &str) -> MaxGauge {
        MaxGauge(self.cell(name, Kind::MaxGauge, Class::Exact))
    }

    /// Registers an exact-class log2-bucketed histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.cell(name, Kind::Histogram, Class::Exact))
    }

    /// Registers a wall-class span timer recording elapsed nanoseconds
    /// into a log2 histogram. Disabled registries never read the clock.
    pub fn timer(&self, name: &str) -> Timer {
        Timer(self.cell(name, Kind::Histogram, Class::Wall))
    }

    /// An independent empty registry with the same enabledness — the
    /// per-worker half of the fork/merge pattern.
    pub fn fork(&self) -> Registry {
        Self::with_enabled(self.is_enabled())
    }

    /// Folds `other`'s metrics into this registry: counters and
    /// histograms add, max gauges take the maximum. The operation is
    /// associative and commutative, so any merge order over any
    /// partition of the recorded events yields identical totals.
    pub fn merge(&self, other: &Registry) {
        let Some(theirs) = other.inner.as_ref() else {
            return;
        };
        let snapshot: Vec<(String, Arc<Cell>)> = {
            let cells = theirs.cells.lock().expect("obs registry");
            cells
                .iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect()
        };
        for (name, cell) in snapshot {
            let Some(mine) = self.cell(&name, cell.kind, cell.class) else {
                return;
            };
            match cell.kind {
                Kind::Counter => {
                    mine.count
                        .fetch_add(cell.count.load(Ordering::Relaxed), Ordering::Relaxed);
                }
                Kind::MaxGauge => {
                    mine.count
                        .fetch_max(cell.count.load(Ordering::Relaxed), Ordering::Relaxed);
                }
                Kind::Histogram => {
                    mine.count
                        .fetch_add(cell.count.load(Ordering::Relaxed), Ordering::Relaxed);
                    mine.sum
                        .fetch_add(cell.sum.load(Ordering::Relaxed), Ordering::Relaxed);
                    for (m, t) in mine.buckets.iter().zip(&cell.buckets) {
                        m.fetch_add(t.load(Ordering::Relaxed), Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// A stable-order snapshot of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let mut metrics = BTreeMap::new();
        if let Some(inner) = &self.inner {
            let cells = inner.cells.lock().expect("obs registry");
            for (name, cell) in cells.iter() {
                let value = match cell.kind {
                    Kind::Counter => MetricValue::Counter(cell.count.load(Ordering::Relaxed)),
                    Kind::MaxGauge => MetricValue::Max(cell.count.load(Ordering::Relaxed)),
                    Kind::Histogram => MetricValue::Histogram {
                        count: cell.count.load(Ordering::Relaxed),
                        sum: cell.sum.load(Ordering::Relaxed),
                        buckets: cell
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(i, b)| {
                                let n = b.load(Ordering::Relaxed);
                                (n > 0).then_some((i as u32, n))
                            })
                            .collect(),
                    },
                };
                metrics.insert(
                    name.clone(),
                    Metric {
                        class: cell.class,
                        value,
                    },
                );
            }
        }
        Snapshot { metrics }
    }
}

/// A monotonic counter handle. No-op when obtained from a disabled
/// registry.
#[derive(Debug, Clone)]
pub struct Counter(Option<Arc<Cell>>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.count.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A high-water gauge handle: keeps the maximum observed value.
#[derive(Debug, Clone)]
pub struct MaxGauge(Option<Arc<Cell>>);

impl MaxGauge {
    /// Raises the gauge to `v` if `v` exceeds the current maximum.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.count.fetch_max(v, Ordering::Relaxed);
        }
    }
}

/// A log2-bucketed histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Option<Arc<Cell>>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(v, Ordering::Relaxed);
            cell.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `n` identical observations in one shot (used when folding
    /// aggregate simulation results into a distribution).
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if let Some(cell) = &self.0 {
            cell.count.fetch_add(n, Ordering::Relaxed);
            cell.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
            cell.buckets[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// A wall-clock span timer. [`Timer::start`] returns a guard that
/// records the elapsed nanoseconds when dropped; from a disabled
/// registry neither the start nor the stop reads the clock.
#[derive(Debug, Clone)]
pub struct Timer(Option<Arc<Cell>>);

impl Timer {
    /// Starts a span; drop the guard to record it.
    #[inline]
    pub fn start(&self) -> Span {
        Span(
            self.0
                .as_ref()
                .map(|cell| (Instant::now(), Arc::clone(cell))),
        )
    }
}

/// An in-flight timed span (see [`Timer::start`]).
#[derive(Debug)]
pub struct Span(Option<(Instant, Arc<Cell>)>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, cell)) = self.0.take() {
            let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(ns, Ordering::Relaxed);
            cell.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One exported metric: determinism class plus value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metric {
    /// Determinism class.
    pub class: Class,
    /// The recorded value.
    pub value: MetricValue,
}

/// An exported metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// High-water mark.
    Max(u64),
    /// Log2-bucketed distribution; `buckets` holds `(bucket_index,
    /// count)` for non-empty buckets, ascending.
    Histogram {
        /// Observations.
        count: u64,
        /// Sum of observations (wrapping).
        sum: u64,
        /// Non-empty `(log2 bucket, count)` pairs.
        buckets: Vec<(u32, u64)>,
    },
}

/// A point-in-time, stable-order view of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Metric name → metric, in lexicographic name order.
    pub metrics: BTreeMap<String, Metric>,
}

impl Snapshot {
    /// Only the exact-class metrics — the subset guaranteed
    /// bit-identical across `--threads` and `--no-memo`.
    #[must_use]
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            metrics: self
                .metrics
                .iter()
                .filter(|(_, m)| m.class == Class::Exact)
                .map(|(k, m)| (k.clone(), m.clone()))
                .collect(),
        }
    }

    /// The value of a counter or max gauge by name.
    pub fn count(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name)?.value {
            MetricValue::Counter(n) | MetricValue::Max(n) => Some(n),
            MetricValue::Histogram { .. } => None,
        }
    }

    /// Renders the snapshot as a JSON object, one key per metric, in
    /// stable name order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, m)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            match &m.value {
                MetricValue::Counter(n) => {
                    let _ = writeln!(
                        out,
                        "  \"{name}\": {{\"type\": \"counter\", \"class\": \"{}\", \"value\": {n}}}{comma}",
                        m.class.label()
                    );
                }
                MetricValue::Max(n) => {
                    let _ = writeln!(
                        out,
                        "  \"{name}\": {{\"type\": \"max\", \"class\": \"{}\", \"value\": {n}}}{comma}",
                        m.class.label()
                    );
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let _ = write!(
                        out,
                        "  \"{name}\": {{\"type\": \"histogram\", \"class\": \"{}\", \
                         \"count\": {count}, \"sum\": {sum}, \"buckets\": {{",
                        m.class.label()
                    );
                    for (j, (b, n)) in buckets.iter().enumerate() {
                        let c = if j + 1 < buckets.len() { ", " } else { "" };
                        let _ = write!(out, "\"{b}\": {n}{c}");
                    }
                    let _ = writeln!(out, "}}}}{comma}");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the snapshot as Prometheus text exposition: metric names
    /// with `.` mapped to `_`, histograms as `_count`/`_sum` plus
    /// cumulative `_bucket{le="..."}` series (le = the bucket's upper
    /// bound `2^b - 1`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, m) in &self.metrics {
            let flat = name.replace('.', "_");
            match &m.value {
                MetricValue::Counter(n) | MetricValue::Max(n) => {
                    let _ = writeln!(out, "# TYPE {flat} counter");
                    let _ = writeln!(out, "{flat} {n}");
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let _ = writeln!(out, "# TYPE {flat} histogram");
                    let mut cumulative = 0u64;
                    for (b, n) in buckets {
                        cumulative += n;
                        let le = if *b >= 64 {
                            u64::MAX
                        } else {
                            (1u64 << b).saturating_sub(1)
                        };
                        let _ = writeln!(out, "{flat}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{flat}_bucket{{le=\"+Inf\"}} {count}");
                    let _ = writeln!(out, "{flat}_sum {sum}");
                    let _ = writeln!(out, "{flat}_count {count}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("a");
        c.add(5);
        reg.histogram("h").record(9);
        reg.max_gauge("g").observe(3);
        let _span = reg.timer("t").start();
        let snap = reg.snapshot();
        assert!(snap.metrics.is_empty());
        assert_eq!(snap.to_json(), "{\n}\n");
        assert!(snap.to_prometheus().is_empty());
    }

    #[test]
    // The point of the clone IS the clone: handles must alias one store.
    #[allow(clippy::redundant_clone)]
    fn counters_share_cells_across_clones_and_names() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.clone().counter("x");
        a.add(2);
        b.inc();
        assert_eq!(reg.snapshot().count("x"), Some(3));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in [0, 1, 2, 3, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = reg.snapshot();
        match &snap.metrics["lat"].value {
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                assert_eq!(*count, 6);
                assert_eq!(
                    *sum,
                    0u64.wrapping_add(1 + 2 + 3 + 1024).wrapping_add(u64::MAX)
                );
                // v=0 -> bucket 0, 1 -> 1, 2..3 -> 2, 1024 -> 11, MAX -> 64.
                assert_eq!(
                    buckets,
                    &vec![(0u32, 1u64), (1, 1), (2, 2), (11, 1), (64, 1)]
                );
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn max_gauge_keeps_high_water() {
        let reg = Registry::new();
        let g = reg.max_gauge("depth");
        g.observe(4);
        g.observe(9);
        g.observe(7);
        assert_eq!(reg.snapshot().count("depth"), Some(9));
    }

    #[test]
    fn timer_records_wall_spans() {
        let reg = Registry::new();
        let t = reg.timer("span");
        drop(t.start());
        let snap = reg.snapshot();
        let m = &snap.metrics["span"];
        assert_eq!(m.class, Class::Wall);
        match &m.value {
            MetricValue::Histogram { count, .. } => assert_eq!(*count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
        // Wall metrics drop out of the deterministic view.
        assert!(snap.deterministic().metrics.is_empty());
    }

    #[test]
    fn merge_folds_counters_histograms_and_gauges() {
        let a = Registry::new();
        a.counter("c").add(2);
        a.histogram("h").record(8);
        a.max_gauge("g").observe(5);
        let b = a.fork();
        assert!(b.is_enabled());
        b.counter("c").add(3);
        b.histogram("h").record(8);
        b.max_gauge("g").observe(4);
        b.counter("only_b").inc();
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count("c"), Some(5));
        assert_eq!(snap.count("g"), Some(5));
        assert_eq!(snap.count("only_b"), Some(1));
        match &snap.metrics["h"].value {
            MetricValue::Histogram { count, sum, .. } => {
                assert_eq!(*count, 2);
                assert_eq!(*sum, 16);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn json_and_prometheus_are_stable_and_parseable() {
        let reg = Registry::new();
        reg.counter("b.count").add(7);
        reg.counter("a.count").add(1);
        reg.histogram("c.hist").record(100);
        let snap = reg.snapshot();
        let json = snap.to_json();
        // BTreeMap order: a.count before b.count before c.hist.
        let (ia, ib, ic) = (
            json.find("a.count").unwrap(),
            json.find("b.count").unwrap(),
            json.find("c.hist").unwrap(),
        );
        assert!(ia < ib && ib < ic, "{json}");
        assert!(json.contains("\"value\": 7"));
        let prom = snap.to_prometheus();
        assert!(prom.contains("a_count 1"));
        assert!(prom.contains("c_hist_count 1"));
        assert!(prom.contains("c_hist_sum 100"));
        assert!(prom.contains("c_hist_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn kind_conflicts_are_rejected() {
        let reg = Registry::new();
        let _ = reg.counter("m");
        let _ = reg.histogram("m");
    }
}
