//! Cross-sweep sub-simulation memoization.
//!
//! Design-space sweeps evaluate dozens of points that differ only in
//! cost or provisioning parameters while replaying the *same* workload
//! traces through the *same* cache/memory sub-simulators. This module
//! provides the result cache that lets those points share their
//! sub-simulations: a sharded, content-addressed map from a canonical
//! 128-bit key (built from every input that can influence the result) to
//! the computed value.
//!
//! # Determinism
//!
//! Memoization is safe here because every cached computation in this
//! workspace is a *pure function of its key*: the key includes the trace
//! parameters, every seed, the access count, the cache geometry, and the
//! policy, and the simulators draw only from [`SimRng`](crate::SimRng)
//! streams derived from those seeds. A cache hit therefore returns the
//! bit-identical value a cold run would have produced. Under the
//! [`ThreadPool`](crate::ThreadPool), two workers racing on the same key
//! may both compute the value; both arrive at the same bits, the first
//! insert wins, and the loser's copy is dropped — scheduling order can
//! never leak into results.
//!
//! # Example
//! ```
//! use wcs_simcore::memo::{MemoCache, MemoKey};
//! let cache: MemoCache<u64> = MemoCache::new();
//! let key = MemoKey::new("square").push_u64(12).finish();
//! let v = cache.get_or_compute(key, || 12 * 12);
//! assert_eq!(v, 144);
//! assert_eq!(cache.get_or_compute(key, || unreachable!()), 144);
//! assert_eq!(cache.stats().hits, 1);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock a shard, recovering from poisoning. Shard state is a plain
/// `HashMap` mutated only by single `insert`/`clear` calls, so a panic
/// while the lock was held (e.g. a poisoned sweep cell under
/// `catch_unwind`) cannot leave a half-written entry behind.
fn lock_shard<V>(shard: &Mutex<HashMap<u128, V>>) -> MutexGuard<'_, HashMap<u128, V>> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Number of independent shards; keys are spread by their low bits so
/// concurrent sweep workers rarely contend on the same lock.
const SHARDS: usize = 16;

/// A canonical 128-bit content hash under construction.
///
/// Two independently seeded 64-bit FNV-style lanes, each finalized with
/// a strong bit mixer per push. Collisions across distinct input tuples
/// are cryptographically unlikely at the scale of a sweep (hundreds to
/// millions of keys), and the construction is fixed — keys are stable
/// across runs, platforms, and thread counts.
#[derive(Debug, Clone, Copy)]
pub struct MemoKey {
    lo: u64,
    hi: u64,
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    // SplitMix64 finalizer: full-avalanche over 64 bits.
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl MemoKey {
    /// Starts a key for the named computation domain. Distinct domains
    /// ("storage-replay", "twolevel-run", ...) can never collide even on
    /// identical field sequences.
    pub fn new(domain: &str) -> Self {
        let mut key = MemoKey {
            lo: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
            hi: 0x9E37_79B9_7F4A_7C15, // golden-ratio companion lane
        };
        key.absorb_bytes(domain.as_bytes());
        key
    }

    #[inline]
    fn absorb(&mut self, v: u64) {
        self.lo = mix64(self.lo ^ v).wrapping_mul(0x0000_0100_0000_01B3);
        self.hi = mix64(self.hi.rotate_left(17) ^ v).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    }

    #[inline]
    fn absorb_bytes(&mut self, bytes: &[u8]) {
        self.absorb(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.absorb(u64::from_le_bytes(word));
        }
    }

    /// Absorbs a raw 64-bit field.
    #[must_use]
    pub fn push_u64(mut self, v: u64) -> Self {
        self.absorb(v);
        self
    }

    /// Absorbs a 32-bit field.
    #[must_use]
    pub fn push_u32(self, v: u32) -> Self {
        self.push_u64(u64::from(v))
    }

    /// Absorbs a `usize` field.
    #[must_use]
    pub fn push_usize(self, v: usize) -> Self {
        self.push_u64(v as u64)
    }

    /// Absorbs a boolean field.
    #[must_use]
    pub fn push_bool(self, v: bool) -> Self {
        self.push_u64(u64::from(v))
    }

    /// Absorbs a float by its exact bit pattern — `-0.0` and `0.0` hash
    /// differently, NaNs by payload; what matters is that *equal inputs*
    /// produce equal keys, and bit patterns are the strictest reading.
    #[must_use]
    pub fn push_f64(self, v: f64) -> Self {
        self.push_u64(v.to_bits())
    }

    /// Absorbs a string field (length-prefixed, so `("ab","c")` and
    /// `("a","bc")` cannot collide).
    #[must_use]
    pub fn push_str(mut self, s: &str) -> Self {
        self.absorb_bytes(s.as_bytes());
        self
    }

    /// Absorbs any [`MemoHash`] value.
    #[must_use]
    pub fn push<T: MemoHash + ?Sized>(mut self, v: &T) -> Self {
        v.memo_hash(&mut self);
        self
    }

    /// Finalizes into the 128-bit cache key.
    pub fn finish(&self) -> u128 {
        let lo = mix64(self.lo ^ self.hi.rotate_left(32));
        let hi = mix64(self.hi ^ self.lo.rotate_left(32) ^ 0xD6E8_FEB8_6659_FD93);
        (u128::from(hi) << 64) | u128::from(lo)
    }
}

/// Types that know how to feed their result-determining fields into a
/// [`MemoKey`].
///
/// Implementations must absorb **every** field that can influence a
/// computation consuming the value — a field omitted here is a field two
/// different computations can silently share a cache entry on.
pub trait MemoHash {
    /// Absorbs `self` into the key.
    fn memo_hash(&self, key: &mut MemoKey);
}

impl MemoHash for u64 {
    fn memo_hash(&self, key: &mut MemoKey) {
        key.absorb(*self);
    }
}

impl MemoHash for u32 {
    fn memo_hash(&self, key: &mut MemoKey) {
        key.absorb(u64::from(*self));
    }
}

impl MemoHash for usize {
    fn memo_hash(&self, key: &mut MemoKey) {
        key.absorb(*self as u64);
    }
}

impl MemoHash for bool {
    fn memo_hash(&self, key: &mut MemoKey) {
        key.absorb(u64::from(*self));
    }
}

impl MemoHash for f64 {
    fn memo_hash(&self, key: &mut MemoKey) {
        key.absorb(self.to_bits());
    }
}

impl MemoHash for str {
    fn memo_hash(&self, key: &mut MemoKey) {
        key.absorb_bytes(self.as_bytes());
    }
}

impl<T: MemoHash> MemoHash for Option<T> {
    fn memo_hash(&self, key: &mut MemoKey) {
        match self {
            None => key.absorb(0),
            Some(v) => {
                key.absorb(1);
                v.memo_hash(key);
            }
        }
    }
}

/// Hit/miss counters of a [`MemoCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that computed (and, when enabled, stored) the value.
    pub misses: u64,
}

impl MemoStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum of two counter sets.
    #[must_use]
    pub fn merged(&self, other: &MemoStats) -> MemoStats {
        MemoStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// A sharded, content-addressed result cache.
///
/// Values are cloned out on every hit, so `V` should either be small
/// (plain stats structs) or an `Arc` around something big (a shared
/// trace buffer). A cache constructed with [`MemoCache::disabled`]
/// computes every lookup and stores nothing — the cold path, reachable
/// from every bench binary via `--no-memo`.
pub struct MemoCache<V> {
    shards: Vec<Mutex<HashMap<u128, V>>>,
    enabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> MemoCache<V> {
    /// An empty, enabled cache.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A cache in bypass mode: every lookup recomputes, nothing is
    /// stored. Lookup keys are still counted as misses so hit-rate
    /// reporting stays meaningful.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// A cache that memoizes iff `enabled`.
    pub fn with_enabled(enabled: bool) -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            enabled,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Whether this cache stores results.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, V>> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Returns the cached value for `key`, or computes, stores, and
    /// returns it.
    ///
    /// `compute` runs outside the shard lock, so memoized computations
    /// may freely perform nested lookups (even on this cache). If two
    /// threads race on the same key both compute the (identical) value
    /// and the first insert wins.
    pub fn get_or_compute(&self, key: u128, compute: impl FnOnce() -> V) -> V {
        if self.enabled {
            if let Some(v) = lock_shard(self.shard(key)).get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return v.clone();
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        if self.enabled {
            lock_shard(self.shard(key))
                .entry(key)
                .or_insert_with(|| v.clone());
        }
        v
    }

    /// Returns the cached value for `key` if present.
    pub fn get(&self, key: u128) -> Option<V> {
        if !self.enabled {
            return None;
        }
        lock_shard(self.shard(key)).get(&key).cloned()
    }

    /// Stores `value` under `key` unless an entry already exists
    /// (first-insert-wins, matching the racing-compute semantics of
    /// [`get_or_compute`](Self::get_or_compute)). Returns `true` when the
    /// value was stored. No-op (returning `false`) on a disabled cache.
    ///
    /// This is the journal-replay seeding path: a resumed run pre-loads
    /// cells recovered from the write-ahead journal before any compute
    /// happens, so lookups on those keys hit without recomputing.
    pub fn insert(&self, key: u128, value: V) -> bool {
        if !self.enabled {
            return false;
        }
        let mut shard = lock_shard(self.shard(key));
        if shard.contains_key(&key) {
            return false;
        }
        shard.insert(key, value);
        true
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            lock_shard(s).clear();
        }
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<V: Clone> Default for MemoCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

// `Debug` without requiring `V: Debug` — cached values can be large
// trace buffers.
impl<V> fmt::Debug for MemoCache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoCache")
            .field("enabled", &self.enabled)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_field_sensitive() {
        let a = MemoKey::new("d").push_u64(1).push_f64(0.25).finish();
        let b = MemoKey::new("d").push_u64(1).push_f64(0.25).finish();
        assert_eq!(a, b);
        assert_ne!(a, MemoKey::new("d").push_u64(2).push_f64(0.25).finish());
        assert_ne!(a, MemoKey::new("d").push_u64(1).push_f64(0.5).finish());
        assert_ne!(a, MemoKey::new("e").push_u64(1).push_f64(0.25).finish());
    }

    #[test]
    fn field_order_and_domain_matter() {
        let ab = MemoKey::new("d").push_u64(7).push_u64(9).finish();
        let ba = MemoKey::new("d").push_u64(9).push_u64(7).finish();
        assert_ne!(ab, ba);
        // Length-prefixed strings: ("ab","c") vs ("a","bc") differ.
        let s1 = MemoKey::new("d").push_str("ab").push_str("c").finish();
        let s2 = MemoKey::new("d").push_str("a").push_str("bc").finish();
        assert_ne!(s1, s2);
    }

    #[test]
    fn cache_hits_after_first_compute() {
        let cache: MemoCache<u64> = MemoCache::new();
        let key = MemoKey::new("t").push_u64(3).finish();
        assert_eq!(cache.get_or_compute(key, || 9), 9);
        assert_eq!(cache.get_or_compute(key, || panic!("must hit")), 9);
        assert_eq!(cache.stats(), MemoStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let cache: MemoCache<u64> = MemoCache::disabled();
        let key = MemoKey::new("t").push_u64(3).finish();
        let mut calls = 0;
        for _ in 0..3 {
            cache.get_or_compute(key, || {
                calls += 1;
                42
            });
        }
        assert_eq!(calls, 3);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache: MemoCache<u64> = MemoCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for i in 0..200u64 {
                        let key = MemoKey::new("t").push_u64(i % 32).finish();
                        let v = cache.get_or_compute(key, || (i % 32) * 3);
                        assert_eq!(v, (i % 32) * 3);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 32);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 1600);
    }

    #[test]
    fn insert_is_first_insert_wins() {
        let cache: MemoCache<u64> = MemoCache::new();
        let key = MemoKey::new("seed").push_u64(1).finish();
        assert!(cache.insert(key, 10));
        assert!(!cache.insert(key, 20), "second insert loses");
        assert_eq!(cache.get(key), Some(10));
        // get_or_compute hits the seeded value without computing.
        assert_eq!(cache.get_or_compute(key, || panic!("must hit")), 10);

        let off: MemoCache<u64> = MemoCache::disabled();
        assert!(!off.insert(key, 10));
        assert_eq!(off.get(key), None);
    }

    #[test]
    fn poisoned_shard_recovers() {
        // Panic while holding a shard lock (via compute that panics inside
        // get_or_compute's *unlocked* section cannot poison; poison the
        // shard directly through a scoped thread instead).
        let cache: MemoCache<u64> = MemoCache::new();
        let key = MemoKey::new("p").push_u64(5).finish();
        assert!(cache.insert(key, 7));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock_shard(cache.shard(key));
            panic!("poison the shard");
        }));
        assert!(result.is_err());
        // The cache still serves reads and writes after the poisoning.
        assert_eq!(cache.get(key), Some(7));
        let key2 = MemoKey::new("p").push_u64(6).finish();
        assert_eq!(cache.get_or_compute(key2, || 11), 11);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn option_and_stats_helpers() {
        let mut key = MemoKey::new("o");
        None::<u64>.memo_hash(&mut key);
        let none = key.finish();
        let some = MemoKey::new("o").push(&Some(0u64)).finish();
        assert_ne!(none, some);
        let s = MemoStats { hits: 3, misses: 1 };
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(
            s.merged(&MemoStats { hits: 1, misses: 1 }),
            MemoStats { hits: 4, misses: 2 }
        );
    }
}
