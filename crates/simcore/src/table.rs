//! An open-addressed, power-of-two hash table for hot replay loops.
//!
//! The cache and directory simulators spend most of their time in a
//! `page -> slot` lookup on every trace access. `std::collections::HashMap`
//! pays for SipHash (DoS resistance the simulators do not need) and for
//! its bucket indirection; [`OpenMap`] replaces it with linear probing
//! over one flat array and a single multiplicative mix of the key —
//! deterministic across runs, platforms, and thread counts, so iteration
//! order (and therefore anything derived from it) is reproducible by
//! construction.
//!
//! Deletion uses backward-shift compaction instead of tombstones, so
//! tables that churn (a cache evicting on every miss for millions of
//! accesses) never degrade.
//!
//! # Example
//! ```
//! use wcs_simcore::table::OpenMap;
//! let mut m: OpenMap<u64, u32> = OpenMap::new();
//! m.insert(7, 70);
//! assert_eq!(m.get(&7), Some(&70));
//! assert_eq!(m.remove(&7), Some(70));
//! assert!(m.is_empty());
//! ```

use std::fmt;

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keys an [`OpenMap`] can hash: small `Copy` values with a fast,
/// deterministic, well-mixed 64-bit hash.
pub trait FastKey: Copy + Eq {
    /// A full-avalanche 64-bit hash of the key. Must be deterministic
    /// (no per-process state) — table behaviour is part of simulation
    /// reproducibility.
    fn fast_hash(&self) -> u64;
}

impl FastKey for u64 {
    #[inline]
    fn fast_hash(&self) -> u64 {
        splitmix(*self)
    }
}

impl FastKey for u32 {
    #[inline]
    fn fast_hash(&self) -> u64 {
        splitmix(u64::from(*self))
    }
}

impl FastKey for u128 {
    #[inline]
    fn fast_hash(&self) -> u64 {
        splitmix((*self as u64) ^ splitmix((*self >> 64) as u64))
    }
}

impl FastKey for (u32, u64) {
    #[inline]
    fn fast_hash(&self) -> u64 {
        splitmix(u64::from(self.0).rotate_left(32) ^ splitmix(self.1))
    }
}

/// An open-addressed hash map: linear probing over a power-of-two flat
/// array, backward-shift deletion, deterministic order.
///
/// Grows at 3/4 load; never shrinks (replay workloads plateau at their
/// working-set size).
#[derive(Clone)]
pub struct OpenMap<K: FastKey, V> {
    /// `None` = empty; probe chains never contain holes (backward-shift
    /// deletion restores the invariant on every remove).
    slots: Vec<Option<(K, V)>>,
    len: usize,
    mask: usize,
}

const MIN_CAPACITY: usize = 8;

impl<K: FastKey, V> OpenMap<K, V> {
    /// An empty map with minimal capacity.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty map pre-sized so `capacity` inserts need no growth.
    pub fn with_capacity(capacity: usize) -> Self {
        let want = capacity
            .saturating_mul(4)
            .div_ceil(3)
            .next_power_of_two()
            .max(MIN_CAPACITY);
        let mut slots = Vec::new();
        slots.resize_with(want, || None);
        OpenMap {
            slots,
            len: 0,
            mask: want - 1,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home(&self, key: &K) -> usize {
        (key.fast_hash() as usize) & self.mask
    }

    /// Index of `key` if present.
    #[inline]
    fn probe(&self, key: &K) -> Option<usize> {
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if k == key => return Some(i),
                Some(_) => i = (i + 1) & self.mask,
            }
        }
    }

    /// A reference to the value stored for `key`.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.probe(key).map(|i| {
            let (_, v) = self.slots[i].as_ref().expect("probed slot occupied");
            v
        })
    }

    /// A mutable reference to the value stored for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.probe(key).map(|i| {
            let (_, v) = self.slots[i].as_mut().expect("probed slot occupied");
            v
        })
    }

    /// True when `key` is stored.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.probe(key).is_some()
    }

    /// Stores `value` for `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.home(&key);
        loop {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => i = (i + 1) & self.mask,
            }
        }
    }

    /// Removes and returns the value stored for `key`.
    ///
    /// Uses backward-shift compaction: entries displaced past the freed
    /// slot are moved back so probe chains stay hole-free, and no
    /// tombstones accumulate under churn.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let mut hole = self.probe(key)?;
        let (_, value) = self.slots[hole].take().expect("probed slot occupied");
        self.len -= 1;
        // Backward shift: walk the cluster after the hole; any entry whose
        // home position does not lie strictly between the hole and itself
        // (cyclically) must move into the hole.
        let mut i = (hole + 1) & self.mask;
        while let Some((k, _)) = &self.slots[i] {
            let home = self.home(k);
            // `home` is reachable from `hole` iff the entry's probe chain
            // passes through the hole: cyclic distance home->hole is no
            // greater than home->i.
            let dist_hole = hole.wrapping_sub(home) & self.mask;
            let dist_i = i.wrapping_sub(home) & self.mask;
            if dist_hole <= dist_i {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
            i = (i + 1) & self.mask;
        }
        Some(value)
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Iterates entries in deterministic (slot) order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (k, v)))
    }

    /// Iterates keys in deterministic (slot) order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in deterministic (slot) order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let mut old = Vec::new();
        old.resize_with(new_cap, || None);
        std::mem::swap(&mut self.slots, &mut old);
        self.mask = new_cap - 1;
        self.len = 0;
        for (k, v) in old.into_iter().flatten() {
            self.insert(k, v);
        }
    }
}

impl<K: FastKey, V> Default for OpenMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: FastKey + fmt::Debug, V: fmt::Debug> fmt::Debug for OpenMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: OpenMap<u64, u64> = OpenMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(&1), Some(&11));
        assert!(m.contains_key(&1));
        assert_eq!(m.remove(&1), Some(11));
        assert_eq!(m.remove(&1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: OpenMap<u64, u64> = OpenMap::with_capacity(4);
        for i in 0..10_000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)), "key {i}");
        }
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m: OpenMap<u32, u64> = OpenMap::new();
        m.insert(5, 1);
        *m.get_mut(&5).unwrap() += 41;
        assert_eq!(m.get(&5), Some(&42));
        assert_eq!(m.get_mut(&6), None);
    }

    #[test]
    fn iteration_order_is_deterministic() {
        let build = || {
            let mut m: OpenMap<u64, u64> = OpenMap::new();
            for i in 0..500u64 {
                m.insert(i.wrapping_mul(0x9E37_79B9), i);
            }
            for i in 0..100u64 {
                m.remove(&(i * 5).wrapping_mul(0x9E37_79B9));
            }
            m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn tuple_and_wide_keys_hash() {
        let mut m: OpenMap<(u32, u64), u64> = OpenMap::new();
        m.insert((1, 2), 3);
        m.insert((2, 1), 4);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        assert_eq!(m.get(&(2, 1)), Some(&4));
        let mut w: OpenMap<u128, u64> = OpenMap::new();
        w.insert(u128::MAX, 9);
        w.insert(1, 8);
        assert_eq!(w.get(&u128::MAX), Some(&9));
        assert_eq!(w.get(&1), Some(&8));
    }

    /// Property test: a long random workload of inserts, removes, and
    /// lookups must agree with `std::collections::HashMap` at every step.
    #[test]
    fn agrees_with_std_hashmap_under_churn() {
        let mut rng = SimRng::seed_from(0x7AB1E);
        let mut ours: OpenMap<u64, u64> = OpenMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for step in 0..60_000u64 {
            // Small key space forces collisions, duplicate inserts, and
            // removes of present keys.
            let key = rng.index(512) as u64;
            match rng.index(4) {
                0 | 1 => {
                    let v = step;
                    assert_eq!(ours.insert(key, v), reference.insert(key, v), "step {step}");
                }
                2 => {
                    assert_eq!(ours.remove(&key), reference.remove(&key), "step {step}");
                }
                _ => {
                    assert_eq!(ours.get(&key), reference.get(&key), "step {step}");
                    assert_eq!(
                        ours.contains_key(&key),
                        reference.contains_key(&key),
                        "step {step}"
                    );
                }
            }
            assert_eq!(ours.len(), reference.len(), "step {step}");
        }
        // Full-content equality at the end.
        let mut got: Vec<(u64, u64)> = ours.iter().map(|(k, v)| (*k, *v)).collect();
        let mut want: Vec<(u64, u64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn backward_shift_keeps_chains_probeable() {
        // Force one cluster by inserting many keys, then remove from the
        // middle and verify every survivor is still reachable.
        let mut m: OpenMap<u64, u64> = OpenMap::with_capacity(64);
        for i in 0..48u64 {
            m.insert(i, i);
        }
        for i in (0..48u64).step_by(3) {
            assert_eq!(m.remove(&i), Some(i));
        }
        for i in 0..48u64 {
            if i % 3 == 0 {
                assert_eq!(m.get(&i), None);
            } else {
                assert_eq!(m.get(&i), Some(&i), "key {i} lost after removes");
            }
        }
    }

    #[test]
    fn clear_retains_capacity_and_usability() {
        let mut m: OpenMap<u64, u64> = OpenMap::new();
        for i in 0..100 {
            m.insert(i, i);
        }
        m.clear();
        assert!(m.is_empty());
        m.insert(7, 7);
        assert_eq!(m.get(&7), Some(&7));
        assert_eq!(m.keys().count(), 1);
        assert_eq!(m.values().count(), 1);
    }
}
