//! Random distributions used by the benchmark suite.
//!
//! The warehouse workloads in the paper are driven by a small set of
//! distributions: Zipf popularity (search keywords, video popularity),
//! exponential think/inter-arrival times, log-normal object sizes
//! (mail bodies, attachments), Pareto heavy tails, and empirical mixes.
//! All of them are implemented here against [`SimRng`], with parameter
//! validation at construction time.

use std::fmt;

use crate::{SimDuration, SimRng};

/// Error returned when a distribution is constructed with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    what: String,
}

impl ParamError {
    fn new(what: impl Into<String>) -> Self {
        ParamError { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

/// A source of `f64` samples.
///
/// All samples are guaranteed non-negative and finite, which is what the
/// simulators need (sizes, durations, counts).
pub trait Distribution: fmt::Debug {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution's mean, when known in closed form.
    fn mean(&self) -> f64;

    /// Draws a sample interpreted as seconds and converts it to a
    /// [`SimDuration`].
    fn sample_duration(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.sample(rng))
    }
}

/// A degenerate distribution: always returns the same value.
///
/// # Example
/// ```
/// use wcs_simcore::{SimRng, dist::{Constant, Distribution}};
/// let d = Constant::new(4.0).expect("non-negative");
/// assert_eq!(d.sample(&mut SimRng::seed_from(0)), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(f64);

impl Constant {
    /// Creates the distribution.
    ///
    /// # Errors
    /// Fails if `value` is negative or non-finite.
    pub fn new(value: f64) -> Result<Self, ParamError> {
        if !value.is_finite() || value < 0.0 {
            return Err(ParamError::new("Constant value must be finite and >= 0"));
        }
        Ok(Constant(value))
    }
}

impl Distribution for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates the distribution.
    ///
    /// # Errors
    /// Fails unless `0 <= lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ParamError> {
        if !(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo < hi) {
            return Err(ParamError::new("Uniform requires 0 <= lo < hi"));
        }
        Ok(Uniform { lo, hi })
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.uniform_range(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Exponential distribution with a given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    mean: f64,
}

impl Exp {
    /// Creates an exponential distribution with mean `mean`.
    ///
    /// # Errors
    /// Fails unless `mean` is finite and strictly positive.
    pub fn new(mean: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(ParamError::new("Exp mean must be finite and > 0"));
        }
        Ok(Exp { mean })
    }
}

impl Distribution for Exp {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.uniform(); // (0, 1]
        -self.mean * u.ln()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Log-normal distribution parameterized by the mean and coefficient of
/// variation of the *resulting* values (not of the underlying normal),
/// which is how object-size statistics are usually reported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
    mean: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given value-space `mean` and
    /// coefficient of variation `cv` (std-dev / mean).
    ///
    /// # Errors
    /// Fails unless `mean > 0` and `cv > 0`, both finite.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && cv.is_finite() && mean > 0.0 && cv > 0.0) {
            return Err(ParamError::new("LogNormal requires mean > 0 and cv > 0"));
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Ok(LogNormal {
            mu,
            sigma: sigma2.sqrt(),
            mean,
        })
    }

    fn standard_normal(rng: &mut SimRng) -> f64 {
        // Box-Muller; one value per call keeps the stream simple and
        // deterministic.
        let u1 = (1.0 - rng.uniform()).max(f64::MIN_POSITIVE);
        let u2 = rng.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * Self::standard_normal(rng)).exp()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Bounded Pareto distribution (heavy tail with a cap, as seen in file and
/// video size measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Creates the distribution with shape `alpha` on `[lo, hi]`.
    ///
    /// # Errors
    /// Fails unless `alpha > 0` and `0 < lo < hi`, all finite.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Result<Self, ParamError> {
        if !(alpha.is_finite()
            && alpha > 0.0
            && lo.is_finite()
            && hi.is_finite()
            && 0.0 < lo
            && lo < hi)
        {
            return Err(ParamError::new(
                "BoundedPareto requires alpha > 0 and 0 < lo < hi",
            ));
        }
        Ok(BoundedPareto { alpha, lo, hi })
    }
}

impl Distribution for BoundedPareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse-CDF of the bounded Pareto.
        let u = rng.uniform();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha);
        x.clamp(self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.lo, self.hi);
        if (a - 1.0).abs() < 1e-12 {
            // alpha == 1 limit
            let la = l;
            (la * (h / l).ln()) / (1.0 - (l / h))
        } else {
            let la = l.powf(a);
            let ha = h.powf(a);
            (la / (1.0 - la / ha))
                * (a / (a - 1.0))
                * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
        }
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(rank = k) ∝ 1 / k^s`.
///
/// Used for search keyword popularity and video popularity (the paper cites
/// Zipf usage patterns for both `websearch` and `ytube`). Sampling is by
/// lower-bound search over the precomputed CDF, accelerated by a guide
/// table that maps the uniform draw to a narrow CDF bracket: popular head
/// ranks resolve in a single probe and the tail search touches only one
/// or two cache lines, instead of the O(log n) walk across the whole CDF
/// that dominated trace materialization.
///
/// # Example
/// ```
/// use wcs_simcore::{SimRng, dist::Zipf};
/// let z = Zipf::new(1000, 0.9).expect("valid");
/// let mut rng = SimRng::seed_from(1);
/// let r = z.sample_rank(&mut rng);
/// assert!((1..=1000).contains(&r));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    /// `guide[j]` = number of CDF entries `<= j / guide_scale`, i.e. the
    /// lower-bound index for any `u` in bucket `j`. Bucket `j` of a draw
    /// `u` is `(u * guide_scale) as usize`, so the answer for `u` lies in
    /// `cdf[guide[j] .. guide[j + 1] + 1]`.
    guide: Vec<u32>,
    guide_scale: f64,
    mean_rank: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Errors
    /// Fails unless `n >= 1` and `s` is finite and non-negative.
    pub fn new(n: usize, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError::new("Zipf exponent must be finite and >= 0"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        let mut mean_rank = 0.0;
        let mut last = 0.0;
        for (i, &c) in cdf.iter().enumerate() {
            mean_rank += (i as f64 + 1.0) * (c - last);
            last = c;
        }
        // Guide buckets proportional to n (clamped): one pass over the
        // CDF fills the count-below table for every bucket boundary.
        let buckets = n.clamp(16, 1 << 16);
        let guide_scale = buckets as f64;
        let mut guide = vec![0u32; buckets + 1];
        let mut j = 0usize;
        for (i, &c) in cdf.iter().enumerate() {
            // First bucket whose boundary exceeds c: all earlier bucket
            // boundaries have at least i + 1 entries at or below them.
            let bound = ((c * guide_scale) as usize + 1).min(buckets);
            while j < bound {
                guide[j] = i as u32;
                j += 1;
            }
        }
        while j <= buckets {
            guide[j] = n as u32;
            j += 1;
        }
        Ok(Zipf {
            cdf,
            guide,
            guide_scale,
            mean_rank,
        })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is only a single rank (degenerate).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a 1-based rank.
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        self.rank_of(rng.uniform())
    }

    /// The 1-based rank a uniform draw `u` in `[0, 1)` maps to: the
    /// smallest `k` with `u < cdf[k - 1]` (an exact hit on `cdf[i]`
    /// belongs to the next rank). Exposed so chunk-parallel trace
    /// generators can sample from pre-split uniform streams.
    #[inline]
    pub fn rank_of(&self, u: f64) -> usize {
        // Guide bracket: every entry before `lo` is <= the bucket's lower
        // boundary <= u, and the lower bound for u is at most the next
        // bucket's count (entries <= its boundary) since u < boundary.
        let j = ((u * self.guide_scale) as usize).min(self.guide.len() - 2);
        let lo = self.guide[j] as usize;
        let hi = (self.guide[j + 1] as usize).min(self.cdf.len());
        // Lower bound within the bracket: first index with cdf[i] > u.
        let idx = lo + self.cdf[lo..hi].partition_point(|&c| c <= u);
        (idx + 1).min(self.cdf.len())
    }

    /// Probability of the given 1-based rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!(rank >= 1 && rank <= self.cdf.len(), "rank out of range");
        let hi = self.cdf[rank - 1];
        let lo = if rank >= 2 { self.cdf[rank - 2] } else { 0.0 };
        hi - lo
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_rank(rng) as f64
    }
    fn mean(&self) -> f64 {
        self.mean_rank
    }
}

/// An empirical mixture: samples one of a fixed set of values with given
/// weights (e.g. the LoadSim action mix for `webmail`).
#[derive(Debug, Clone)]
pub struct Empirical {
    values: Vec<f64>,
    cdf: Vec<f64>,
    mean: f64,
}

impl Empirical {
    /// Creates a mixture from `(value, weight)` pairs.
    ///
    /// # Errors
    /// Fails if the list is empty, any value is negative/non-finite, or any
    /// weight is non-positive/non-finite.
    pub fn new(points: &[(f64, f64)]) -> Result<Self, ParamError> {
        if points.is_empty() {
            return Err(ParamError::new("Empirical requires at least one point"));
        }
        let mut values = Vec::with_capacity(points.len());
        let mut cdf = Vec::with_capacity(points.len());
        let mut acc = 0.0;
        let mut mean = 0.0;
        for &(v, w) in points {
            if !v.is_finite() || v < 0.0 {
                return Err(ParamError::new("Empirical values must be finite and >= 0"));
            }
            if !w.is_finite() || w <= 0.0 {
                return Err(ParamError::new("Empirical weights must be finite and > 0"));
            }
            acc += w;
            values.push(v);
            cdf.push(acc);
            mean += v * w;
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Empirical {
            values,
            cdf,
            mean: mean / total,
        })
    }

    /// Draws the index of a mixture component.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => i.min(self.values.len() - 1),
        }
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.values[self.sample_index(rng)]
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &dyn Distribution, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant::new(2.5).unwrap();
        assert_eq!(sample_mean(&d, 0, 10), 2.5);
        assert!(Constant::new(-1.0).is_err());
        assert!(Constant::new(f64::NAN).is_err());
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 4.0).unwrap();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        assert!((sample_mean(&d, 5, 20_000) - 3.0).abs() < 0.02);
        assert!(Uniform::new(4.0, 2.0).is_err());
        assert!(Uniform::new(-1.0, 2.0).is_err());
    }

    #[test]
    fn exp_mean_matches() {
        let d = Exp::new(0.25).unwrap();
        assert!((sample_mean(&d, 7, 50_000) - 0.25).abs() < 0.01);
        assert!(Exp::new(0.0).is_err());
    }

    #[test]
    fn lognormal_mean_and_positivity() {
        let d = LogNormal::from_mean_cv(10.0, 1.5).unwrap();
        let mut rng = SimRng::seed_from(9);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
        let m = sample_mean(&d, 11, 200_000);
        assert!((m - 10.0).abs() / 10.0 < 0.05, "mean {m}");
        assert!(LogNormal::from_mean_cv(0.0, 1.0).is_err());
    }

    #[test]
    fn pareto_within_bounds() {
        let d = BoundedPareto::new(1.2, 1.0, 1000.0).unwrap();
        let mut rng = SimRng::seed_from(13);
        for _ in 0..2000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&x));
        }
        let m = sample_mean(&d, 17, 200_000);
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.1,
            "mean {m} vs {}",
            d.mean()
        );
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.0).unwrap();
        let mut rng = SimRng::seed_from(19);
        let mut counts = vec![0usize; 101];
        for _ in 0..50_000 {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        // pmf(1)/pmf(2) should be 2 for s = 1.
        assert!((z.pmf(1) / z.pmf(2) - 2.0).abs() < 1e-9);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 2.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0).unwrap();
        for k in 1..=10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_guide_table_matches_full_lower_bound_search() {
        // The guide table is a pure accelerator: for every draw it must
        // produce exactly the rank a lower-bound search over the whole
        // CDF produces.
        for (n, s) in [(1, 0.9), (2, 0.0), (17, 1.2), (1000, 0.65), (50_000, 1.05)] {
            let z = Zipf::new(n, s).unwrap();
            let mut rng = SimRng::seed_from(0xC0FFEE ^ n as u64);
            for _ in 0..20_000 {
                let u = rng.uniform();
                let direct = z.cdf.partition_point(|&c| c <= u) + 1;
                assert_eq!(z.rank_of(u), direct.min(n), "n={n} s={s} u={u}");
            }
            // Boundary draws: bucket edges and exact CDF values.
            for k in [0usize, 1, n / 2, n.saturating_sub(1)] {
                let u = z.cdf[k.min(n - 1)];
                let direct = z.cdf.partition_point(|&c| c <= u) + 1;
                assert_eq!(z.rank_of(u), direct.min(n));
            }
            assert_eq!(z.rank_of(0.0), 1);
        }
    }

    #[test]
    fn zipf_param_validation() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn empirical_mixture_weights() {
        let d = Empirical::new(&[(1.0, 3.0), (5.0, 1.0)]).unwrap();
        assert!((d.mean() - 2.0).abs() < 1e-12);
        let m = sample_mean(&d, 23, 100_000);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        assert!(Empirical::new(&[]).is_err());
        assert!(Empirical::new(&[(1.0, 0.0)]).is_err());
        assert!(Empirical::new(&[(-1.0, 1.0)]).is_err());
    }

    #[test]
    fn error_display() {
        let e = Exp::new(-1.0).unwrap_err();
        assert!(e.to_string().contains("Exp mean"));
    }
}

/// Weibull distribution, parameterized by shape `k` and scale `lambda` —
/// the classic fit for disk-service and failure-time data (k < 1 gives
/// heavy tails, k = 1 reduces to the exponential).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates the distribution.
    ///
    /// # Errors
    /// Fails unless both parameters are finite and strictly positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if !(shape.is_finite() && scale.is_finite() && shape > 0.0 && scale > 0.0) {
            return Err(ParamError::new("Weibull requires shape > 0 and scale > 0"));
        }
        Ok(Weibull { shape, scale })
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF: scale * (-ln(1-u))^(1/k).
        let u = 1.0 - rng.uniform(); // (0, 1]
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        // scale * Gamma(1 + 1/k), via the Lanczos-free Stirling-series
        // gamma below (adequate for k in the simulation range).
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

/// Gamma function by the Lanczos approximation (g = 7, n = 9), accurate
/// to ~1e-13 over the positive reals the simulators use.
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        let t = x + G + 0.5;
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Geometric distribution over `1, 2, 3, ...` with success probability
/// `p` (mean `1/p`) — session lengths, retry counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates the distribution.
    ///
    /// # Errors
    /// Fails unless `p` is in `(0, 1]`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(p.is_finite() && p > 0.0 && p <= 1.0) {
            return Err(ParamError::new("Geometric requires p in (0, 1]"));
        }
        Ok(Geometric { p })
    }

    /// Draws a count in `1..`.
    pub fn sample_count(&self, rng: &mut SimRng) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        // Inverse CDF over the geometric support: ceil(ln(1-u)/ln(1-p)).
        let u = rng.uniform();
        let n = ((1.0 - u).ln() / (1.0 - self.p).ln()).ceil();
        n.max(1.0) as u64
    }
}

impl Distribution for Geometric {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_count(rng) as f64
    }
    fn mean(&self) -> f64 {
        1.0 / self.p
    }
}

#[cfg(test)]
mod extra_dist_tests {
    use super::*;

    fn sample_mean(d: &dyn Distribution, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn weibull_exponential_special_case() {
        // k = 1 is Exp(scale): mean = scale.
        let d = Weibull::new(1.0, 0.02).unwrap();
        assert!((d.mean() - 0.02).abs() < 1e-9);
        let m = sample_mean(&d, 3, 100_000);
        assert!((m - 0.02).abs() / 0.02 < 0.03, "mean {m}");
    }

    #[test]
    fn weibull_shape_two_mean() {
        // k = 2: mean = scale * Gamma(1.5) = scale * sqrt(pi)/2.
        let d = Weibull::new(2.0, 1.0).unwrap();
        let expect = (std::f64::consts::PI).sqrt() / 2.0;
        assert!((d.mean() - expect).abs() < 1e-9, "mean {}", d.mean());
        let m = sample_mean(&d, 5, 100_000);
        assert!((m - expect).abs() / expect < 0.02, "sampled {m}");
    }

    #[test]
    fn weibull_heavy_tail_below_one() {
        let d = Weibull::new(0.5, 1.0).unwrap();
        // k = 0.5: mean = Gamma(3) = 2.
        assert!((d.mean() - 2.0).abs() < 1e-9);
        assert!(Weibull::new(0.0, 1.0).is_err());
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn geometric_mean_and_support() {
        let d = Geometric::new(0.125).unwrap();
        assert_eq!(d.mean(), 8.0);
        let mut rng = SimRng::seed_from(7);
        for _ in 0..1000 {
            assert!(d.sample_count(&mut rng) >= 1);
        }
        let m = sample_mean(&d, 9, 100_000);
        assert!((m - 8.0).abs() / 8.0 < 0.03, "mean {m}");
        assert_eq!(Geometric::new(1.0).unwrap().sample_count(&mut rng), 1);
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
    }
}
