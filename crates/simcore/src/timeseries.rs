//! Windowed time series over simulated time.
//!
//! Simulators often need "throughput per 100 ms window" or "utilization
//! over time" views; [`TimeSeries`] accumulates values into fixed-width
//! windows of simulated time and exposes the per-window aggregates.

use crate::{SimDuration, SimTime};

/// A fixed-window accumulator over simulated time.
///
/// # Example
/// ```
/// use wcs_simcore::{SimDuration, SimTime};
/// use wcs_simcore::timeseries::TimeSeries;
/// let mut ts = TimeSeries::new(SimDuration::from_millis(10));
/// ts.record(SimTime::from_nanos(1_000_000), 1.0);
/// ts.record(SimTime::from_nanos(15_000_000), 2.0);
/// let w = ts.windows();
/// assert_eq!(w.len(), 2);
/// assert_eq!(w[0].sum, 1.0);
/// assert_eq!(w[1].count, 1);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    width: SimDuration,
    windows: Vec<Window>,
}

/// One aggregated window.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Window {
    /// Window start time.
    pub start: SimTime,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Largest recorded value (NEG_INFINITY when empty).
    pub max: f64,
}

impl Window {
    fn new(start: SimTime) -> Self {
        Window {
            start,
            count: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl TimeSeries {
    /// Creates a series with the given window width.
    ///
    /// # Panics
    /// Panics if the width is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "window width must be positive");
        TimeSeries {
            width,
            windows: Vec::new(),
        }
    }

    fn window_index(&self, at: SimTime) -> usize {
        (at.as_nanos() / self.width.as_nanos()) as usize
    }

    /// Records `value` at simulated time `at`. Times may arrive in any
    /// order; windows are created on demand.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self.window_index(at);
        while self.windows.len() <= idx {
            let start = SimTime::from_nanos(self.windows.len() as u64 * self.width.as_nanos());
            self.windows.push(Window::new(start));
        }
        let w = &mut self.windows[idx];
        w.count += 1;
        w.sum += value;
        w.max = w.max.max(value);
    }

    /// All windows from time zero through the latest recorded value.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Per-window event rate (count / width) — e.g. completions per
    /// second when recording one value per completion.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let w = self.width.as_secs_f64();
        self.windows
            .iter()
            .map(|win| win.count as f64 / w)
            .collect()
    }

    /// The busiest window by count.
    pub fn peak_window(&self) -> Option<&Window> {
        self.windows.iter().max_by_key(|w| w.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_correct_windows() {
        let mut ts = TimeSeries::new(SimDuration::from_micros(100));
        for i in 0..10u64 {
            ts.record(SimTime::from_nanos(i * 50_000), i as f64);
        }
        // 50 us apart, 100 us windows: two values per window.
        assert_eq!(ts.windows().len(), 5);
        for w in ts.windows() {
            assert_eq!(w.count, 2);
        }
    }

    #[test]
    fn rates_reflect_counts() {
        let mut ts = TimeSeries::new(SimDuration::from_millis(1));
        for i in 0..100u64 {
            ts.record(SimTime::from_nanos(i * 10_000), 1.0); // 100/ms
        }
        let rates = ts.rates_per_sec();
        assert_eq!(rates.len(), 1);
        assert!((rates[0] - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn out_of_order_and_gaps() {
        let mut ts = TimeSeries::new(SimDuration::from_micros(10));
        ts.record(SimTime::from_nanos(95_000), 5.0);
        ts.record(SimTime::from_nanos(5_000), 1.0);
        assert_eq!(ts.windows().len(), 10);
        assert_eq!(ts.windows()[0].count, 1);
        assert_eq!(ts.windows()[9].max, 5.0);
        assert_eq!(ts.windows()[4].count, 0);
        assert_eq!(ts.windows()[4].mean(), 0.0);
    }

    #[test]
    fn peak_window() {
        let mut ts = TimeSeries::new(SimDuration::from_micros(10));
        ts.record(SimTime::from_nanos(1_000), 1.0);
        ts.record(SimTime::from_nanos(12_000), 1.0);
        ts.record(SimTime::from_nanos(13_000), 1.0);
        assert_eq!(ts.peak_window().unwrap().start, SimTime::from_nanos(10_000));
    }

    #[test]
    fn ignores_non_finite() {
        let mut ts = TimeSeries::new(SimDuration::from_micros(10));
        ts.record(SimTime::ZERO, f64::NAN);
        assert!(ts.windows().is_empty(), "NaN must not create a window");
        assert!(ts.peak_window().is_none());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_zero_width() {
        TimeSeries::new(SimDuration::ZERO);
    }
}
