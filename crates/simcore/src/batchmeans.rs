//! Batch-means confidence intervals for simulation outputs.
//!
//! A single simulation run produces autocorrelated samples (a congested
//! queue stays congested), so the naive standard error understates
//! uncertainty. The batch-means method groups consecutive samples into
//! batches, treats batch means as approximately independent, and builds
//! a confidence interval from their spread — the standard technique for
//! steady-state discrete-event simulation output analysis.

/// A confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfInterval {
    /// Point estimate (grand mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Number of batches used.
    pub batches: usize,
}

impl ConfInterval {
    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Relative half-width (half-width / |mean|); infinity at mean 0.
    pub fn relative(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// True when the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }
}

/// Two-sided 95% t-quantiles for small degrees of freedom; beyond the
/// table the normal 1.96 is close enough.
fn t_quantile_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Computes a 95% batch-means confidence interval over `samples` using
/// `batches` batches (10-30 is customary).
///
/// Returns `None` when there are not enough samples for at least two
/// full batches.
///
/// # Panics
/// Panics if `batches < 2`.
///
/// # Example
/// ```
/// use wcs_simcore::batchmeans::batch_means_ci;
/// let samples: Vec<f64> = (0..1000).map(|i| 5.0 + ((i % 7) as f64) * 0.1).collect();
/// let ci = batch_means_ci(&samples, 20).expect("enough samples");
/// assert!(ci.contains(5.3));
/// ```
pub fn batch_means_ci(samples: &[f64], batches: usize) -> Option<ConfInterval> {
    assert!(batches >= 2, "need at least two batches");
    let per_batch = samples.len() / batches;
    if per_batch == 0 {
        return None;
    }
    let used = per_batch * batches;
    let mut batch_means = Vec::with_capacity(batches);
    for b in 0..batches {
        let chunk = &samples[b * per_batch..(b + 1) * per_batch];
        batch_means.push(chunk.iter().sum::<f64>() / per_batch as f64);
    }
    let grand = batch_means.iter().sum::<f64>() / batches as f64;
    let var = batch_means
        .iter()
        .map(|m| (m - grand) * (m - grand))
        .sum::<f64>()
        / (batches - 1) as f64;
    let se = (var / batches as f64).sqrt();
    let _ = used;
    Some(ConfInterval {
        mean: grand,
        half_width: t_quantile_95(batches - 1) * se,
        batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn covers_true_mean_of_iid_noise() {
        let mut rng = SimRng::seed_from(5);
        let samples: Vec<f64> = (0..20_000).map(|_| 3.0 + rng.uniform()).collect();
        let ci = batch_means_ci(&samples, 20).unwrap();
        assert!(ci.contains(3.5), "CI [{:.4}, {:.4}]", ci.lo(), ci.hi());
        assert!(ci.relative() < 0.01);
    }

    #[test]
    fn autocorrelated_data_widens_interval() {
        // A slow random walk around 0: naive SE would be tiny; batch
        // means must report the real uncertainty.
        let mut rng = SimRng::seed_from(7);
        let mut x = 0.0;
        let samples: Vec<f64> = (0..10_000)
            .map(|_| {
                x += rng.uniform() - 0.5;
                x
            })
            .collect();
        let ci = batch_means_ci(&samples, 20).unwrap();
        let naive_se = {
            let n = samples.len() as f64;
            let mean = samples.iter().sum::<f64>() / n;
            let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
            (var / n).sqrt()
        };
        assert!(
            ci.half_width > 3.0 * 1.96 * naive_se,
            "batch CI {} vs naive {}",
            ci.half_width,
            1.96 * naive_se
        );
    }

    #[test]
    fn too_few_samples_is_none() {
        assert!(batch_means_ci(&[1.0, 2.0, 3.0], 10).is_none());
    }

    #[test]
    fn interval_endpoints() {
        let ci = ConfInterval {
            mean: 10.0,
            half_width: 1.0,
            batches: 20,
        };
        assert_eq!(ci.lo(), 9.0);
        assert_eq!(ci.hi(), 11.0);
        assert!(ci.contains(9.0) && ci.contains(11.0) && !ci.contains(11.01));
        assert!((ci.relative() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two batches")]
    fn rejects_one_batch() {
        batch_means_ci(&[1.0; 100], 1);
    }
}
