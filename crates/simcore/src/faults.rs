//! Deterministic fault injection for ensemble simulations.
//!
//! The paper's ensemble architectures deliberately create *shared
//! failure domains* — one memory blade backs a whole enclosure, remote
//! laptop disks sit behind a SAN link, dual-entry enclosures share fans —
//! and Section 4 defers "reliability concerns of ensemble-level sharing"
//! to future work. This module supplies the missing substrate: seeded
//! stochastic fault processes that yield reproducible failure traces,
//! which the higher-level simulators (cluster dispatcher, memory-blade
//! ensemble, flash cache, cooling) consume to model graceful degradation
//! instead of a fail-free world.
//!
//! Determinism is the design center: the same seed always produces the
//! same failure trace ([`FaultTrace::fingerprint`] lets tests assert
//! byte-identical schedules), and a zero-rate process
//! ([`FaultProcess::never`]) produces an empty trace so fault-aware code
//! paths reproduce fail-free results exactly.
//!
//! # Example
//! ```
//! use wcs_simcore::faults::{FaultInjector, FaultProcess};
//! use wcs_simcore::SimDuration;
//!
//! let mut inj = FaultInjector::new();
//! let blade = inj.add(
//!     "memory-blade",
//!     FaultProcess::exponential(
//!         SimDuration::from_secs_f64(3.0e5), // MTTF
//!         SimDuration::from_secs_f64(3.6e3), // MTTR
//!     )
//!     .unwrap(),
//! );
//! let horizon = SimDuration::from_secs_f64(3.0e7); // ~1 year
//! let trace = inj.trace(horizon, 42);
//! let again = inj.trace(horizon, 42);
//! assert_eq!(trace.fingerprint(), again.fingerprint());
//! assert!(trace.availability(blade, horizon) < 1.0);
//! ```

use crate::error::ConfigError;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Time-to-failure distribution of a component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TtfDist {
    /// The component never fails (the zero-rate process).
    Never,
    /// Memoryless failures at a constant hazard rate (classic MTTF
    /// model for electronics in their useful-life phase).
    Exponential {
        /// Mean time to failure.
        mttf: SimDuration,
    },
    /// Weibull time to failure: `shape < 1` models infant mortality
    /// (commodity disks, fans wearing in), `shape > 1` wear-out.
    Weibull {
        /// Shape parameter `k` (> 0).
        shape: f64,
        /// Scale parameter (characteristic life).
        scale: SimDuration,
    },
}

impl TtfDist {
    fn sample(&self, rng: &mut SimRng) -> Option<SimDuration> {
        match *self {
            TtfDist::Never => None,
            TtfDist::Exponential { mttf } => Some(rng.exp_duration(mttf)),
            TtfDist::Weibull { shape, scale } => {
                let u = 1.0 - rng.uniform(); // in (0, 1]
                let t = scale.as_secs_f64() * (-u.ln()).powf(1.0 / shape);
                Some(SimDuration::from_secs_f64(t))
            }
        }
    }
}

/// Repair-time distribution of a component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepairDist {
    /// Deterministic repair time (a swap by a technician on a fixed
    /// service-level agreement).
    Fixed(SimDuration),
    /// Exponentially distributed repair with the given mean.
    Exponential {
        /// Mean time to repair.
        mttr: SimDuration,
    },
    /// Uniformly distributed repair time in `[lo, hi]`.
    Uniform {
        /// Shortest repair.
        lo: SimDuration,
        /// Longest repair.
        hi: SimDuration,
    },
}

impl RepairDist {
    fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            RepairDist::Fixed(d) => d,
            RepairDist::Exponential { mttr } => rng.exp_duration(mttr),
            RepairDist::Uniform { lo, hi } => {
                let lo_s = lo.as_secs_f64();
                let hi_s = hi.as_secs_f64();
                SimDuration::from_secs_f64(rng.uniform_range(lo_s, hi_s))
            }
        }
    }
}

/// A component's failure/repair behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProcess {
    /// Time-to-failure distribution.
    pub ttf: TtfDist,
    /// Repair-time distribution.
    pub repair: RepairDist,
}

impl FaultProcess {
    /// The fail-free process: never fails, so it contributes no events.
    pub fn never() -> Self {
        FaultProcess {
            ttf: TtfDist::Never,
            repair: RepairDist::Fixed(SimDuration::ZERO),
        }
    }

    /// Memoryless failures with mean `mttf`, memoryless repairs with
    /// mean `mttr`.
    ///
    /// # Errors
    /// Rejects non-positive MTTF or negative MTTR.
    pub fn exponential(mttf: SimDuration, mttr: SimDuration) -> Result<Self, ConfigError> {
        ConfigError::check_f64(
            "mttf",
            mttf.as_secs_f64(),
            "must be positive",
            !mttf.is_zero(),
        )?;
        Ok(FaultProcess {
            ttf: TtfDist::Exponential { mttf },
            repair: RepairDist::Exponential { mttr },
        })
    }

    /// Weibull failures with the given shape and characteristic life,
    /// fixed repair time.
    ///
    /// # Errors
    /// Rejects non-positive shape or scale.
    pub fn weibull(
        shape: f64,
        scale: SimDuration,
        repair: SimDuration,
    ) -> Result<Self, ConfigError> {
        ConfigError::check_f64("shape", shape, "must be positive", shape > 0.0)?;
        ConfigError::check_f64(
            "scale",
            scale.as_secs_f64(),
            "must be positive",
            !scale.is_zero(),
        )?;
        Ok(FaultProcess {
            ttf: TtfDist::Weibull { shape, scale },
            repair: RepairDist::Fixed(repair),
        })
    }

    /// True when this process can never produce a failure.
    pub fn is_fail_free(&self) -> bool {
        matches!(self.ttf, TtfDist::Never)
    }

    /// Generates this component's down windows over `[0, horizon)`.
    ///
    /// Windows are disjoint, sorted, and clipped to the horizon. The
    /// generator draws only from `rng`, so a forked per-component stream
    /// keeps components statistically independent *and* stable when
    /// another component's parameters change.
    pub fn windows(&self, horizon: SimDuration, rng: &mut SimRng) -> Vec<DownWindow> {
        let mut out = Vec::new();
        if self.is_fail_free() || horizon.is_zero() {
            return out;
        }
        let end = SimTime::ZERO + horizon;
        let mut t = SimTime::ZERO;
        while let Some(ttf) = self.ttf.sample(rng) {
            let down_at = t + ttf;
            if down_at >= end {
                break;
            }
            let repair = self.repair.sample(rng);
            let up_at = down_at + repair;
            let clipped_up = if up_at > end { end } else { up_at };
            out.push(DownWindow {
                down_at,
                up_at: clipped_up,
            });
            if up_at >= end {
                break;
            }
            t = up_at;
        }
        out
    }

    /// Generates down windows whose *hazard co-varies with load*: the
    /// failure intensity at time `t` is scaled by the piecewise-constant
    /// weight in effect there (segment `i` covers
    /// `[i * seg_dur, (i+1) * seg_dur)`, cycled), normalized so the peak
    /// weight carries the process's full base hazard.
    ///
    /// This is the chaos/traffic orchestration primitive: handing the
    /// arrival profile's rate multipliers in as `weights` makes blades
    /// likeliest to fail exactly when a flash crowd or failover surge
    /// has the ensemble hottest. Implemented by thinning — candidate
    /// failures are drawn from the base process and accepted with
    /// probability `weight / max_weight` — which is exact for the
    /// memoryless ([`TtfDist::Exponential`]) hazard and a deterministic,
    /// monotone approximation for Weibull.
    ///
    /// With every weight equal to the maximum, no thinning draw is
    /// consumed and the schedule is bit-identical to
    /// [`windows`](Self::windows). All-zero weights yield no failures.
    ///
    /// # Panics
    /// Panics if `seg_dur` is zero, `weights` is empty, or any weight is
    /// negative or non-finite.
    pub fn windows_weighted(
        &self,
        horizon: SimDuration,
        seg_dur: SimDuration,
        weights: &[f64],
        rng: &mut SimRng,
    ) -> Vec<DownWindow> {
        assert!(!seg_dur.is_zero(), "segment duration must be positive");
        assert!(!weights.is_empty(), "need at least one weight segment");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        let w_max = weights.iter().copied().fold(0.0, f64::max);
        let mut out = Vec::new();
        if self.is_fail_free() || horizon.is_zero() || w_max <= 0.0 {
            return out;
        }
        let weight_at = |t: SimTime| -> f64 {
            let seg = (t.as_nanos() / seg_dur.as_nanos()) as usize;
            weights[seg % weights.len()]
        };
        let end = SimTime::ZERO + horizon;
        let mut t = SimTime::ZERO;
        while let Some(ttf) = self.ttf.sample(rng) {
            let down_at = t + ttf;
            if down_at >= end {
                break;
            }
            // Thinning: accept the candidate with probability
            // weight/w_max. The draw is skipped at full weight so a
            // flat profile reproduces `windows` bit for bit.
            let accept = weight_at(down_at) / w_max;
            if accept < 1.0 && !rng.chance(accept) {
                t = down_at;
                continue;
            }
            let repair = self.repair.sample(rng);
            let up_at = down_at + repair;
            let clipped_up = if up_at > end { end } else { up_at };
            out.push(DownWindow {
                down_at,
                up_at: clipped_up,
            });
            if up_at >= end {
                break;
            }
            t = up_at;
        }
        out
    }
}

/// One outage: the component is down in `[down_at, up_at)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownWindow {
    /// Failure instant.
    pub down_at: SimTime,
    /// Repair-complete instant.
    pub up_at: SimTime,
}

impl DownWindow {
    /// Length of the outage.
    pub fn duration(&self) -> SimDuration {
        self.up_at.saturating_sub(self.down_at)
    }

    /// True while `t` falls inside the outage.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.down_at && t < self.up_at
    }
}

/// Sums the downtime of sorted, disjoint windows, clipped to `horizon`.
pub fn downtime(windows: &[DownWindow], horizon: SimDuration) -> SimDuration {
    let end = SimTime::ZERO + horizon;
    let mut total = SimDuration::ZERO;
    for w in windows {
        if w.down_at >= end {
            break;
        }
        let up = if w.up_at > end { end } else { w.up_at };
        total += up.saturating_sub(w.down_at);
    }
    total
}

/// Availability over `horizon` of a component with the given down
/// windows: `1 - downtime / horizon` (1.0 for an empty horizon).
pub fn availability(windows: &[DownWindow], horizon: SimDuration) -> f64 {
    if horizon.is_zero() {
        return 1.0;
    }
    1.0 - downtime(windows, horizon).as_secs_f64() / horizon.as_secs_f64()
}

/// True while `t` falls inside any of the (sorted) windows.
pub fn is_down(windows: &[DownWindow], t: SimTime) -> bool {
    // Windows are sorted and disjoint; partition to the candidate.
    windows
        .binary_search_by(|w| {
            if t < w.down_at {
                std::cmp::Ordering::Greater
            } else if t >= w.up_at {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        })
        .is_ok()
}

/// Handle to a component registered with a [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(pub u32);

/// What happened to a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The component went down.
    Fail,
    /// The component came back up.
    Repair,
}

/// One entry of a failure trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When it happened.
    pub at: SimTime,
    /// Which component.
    pub component: ComponentId,
    /// Fail or repair.
    pub kind: FaultKind,
}

/// A set of components with fault processes, from which deterministic
/// failure traces are generated.
///
/// Labels are interned to `&'static str` ([`crate::intern::intern`]):
/// registering a component allocates at most once per distinct label
/// process-wide, and cloning an injector copies pointers, not strings.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    components: Vec<(&'static str, FaultProcess)>,
}

impl FaultInjector {
    /// An injector with no components.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a component, returning its handle.
    pub fn add(&mut self, label: &str, process: FaultProcess) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.components
            .push((crate::intern::intern(label), process));
        id
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when no components are registered.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// A component's label.
    ///
    /// # Panics
    /// Panics on an unknown handle (a handle from a different injector —
    /// always a caller bug).
    pub fn label(&self, id: ComponentId) -> &'static str {
        self.components[id.0 as usize].0
    }

    /// Generates the deterministic failure trace over `[0, horizon)` for
    /// `seed`.
    ///
    /// Each component draws from an independent forked stream, so adding
    /// or reconfiguring one component never perturbs another's schedule.
    pub fn trace(&self, horizon: SimDuration, seed: u64) -> FaultTrace {
        let mut master = SimRng::seed_from(seed);
        let mut per_component = Vec::with_capacity(self.components.len());
        for (i, (_, process)) in self.components.iter().enumerate() {
            // Fork label mixes the index so streams stay distinct even
            // for identical processes.
            let mut rng = master.fork(0xFA17 ^ (i as u64));
            per_component.push(process.windows(horizon, &mut rng));
        }
        let mut events = Vec::new();
        for (i, windows) in per_component.iter().enumerate() {
            for w in windows {
                events.push(FaultEvent {
                    at: w.down_at,
                    component: ComponentId(i as u32),
                    kind: FaultKind::Fail,
                });
                events.push(FaultEvent {
                    at: w.up_at,
                    component: ComponentId(i as u32),
                    kind: FaultKind::Repair,
                });
            }
        }
        events.sort_by_key(|e| (e.at, e.component.0, e.kind == FaultKind::Repair));
        FaultTrace {
            horizon,
            events,
            per_component,
        }
    }
}

/// A deterministic failure trace: every fail/repair event over a
/// horizon, plus per-component outage windows.
#[derive(Debug, Clone)]
pub struct FaultTrace {
    horizon: SimDuration,
    events: Vec<FaultEvent>,
    per_component: Vec<Vec<DownWindow>>,
}

impl FaultTrace {
    /// The horizon this trace covers.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// All events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// A component's sorted outage windows.
    pub fn windows(&self, id: ComponentId) -> &[DownWindow] {
        &self.per_component[id.0 as usize]
    }

    /// A component's availability over the trace horizon.
    pub fn availability(&self, id: ComponentId, horizon: SimDuration) -> f64 {
        availability(self.windows(id), horizon)
    }

    /// Number of failures of a component.
    pub fn failure_count(&self, id: ComponentId) -> usize {
        self.per_component[id.0 as usize].len()
    }

    /// True while `t` falls inside one of `id`'s outages.
    pub fn is_down(&self, id: ComponentId, t: SimTime) -> bool {
        is_down(self.windows(id), t)
    }

    /// An order- and value-sensitive digest of the whole trace (FNV-1a
    /// over every event's nanosecond timestamp, component, and kind).
    /// Two traces with equal fingerprints are byte-identical with
    /// overwhelming probability; determinism tests compare these.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        mix(self.events.len() as u64);
        for e in &self.events {
            mix(e.at.as_nanos());
            mix(e.component.0 as u64);
            mix(match e.kind {
                FaultKind::Fail => 0,
                FaultKind::Repair => 1,
            });
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn never_process_is_empty() {
        let mut rng = SimRng::seed_from(1);
        let w = FaultProcess::never().windows(secs(1e9), &mut rng);
        assert!(w.is_empty());
        assert!(FaultProcess::never().is_fail_free());
    }

    #[test]
    fn exponential_windows_are_sorted_and_disjoint() {
        let p = FaultProcess::exponential(secs(1000.0), secs(50.0)).unwrap();
        let mut rng = SimRng::seed_from(7);
        let w = p.windows(secs(100_000.0), &mut rng);
        assert!(!w.is_empty());
        for pair in w.windows(2) {
            assert!(pair[0].up_at <= pair[1].down_at);
        }
        for win in &w {
            assert!(win.down_at < win.up_at);
        }
    }

    #[test]
    fn failure_count_tracks_mttf() {
        // horizon / (MTTF + MTTR) ~ expected cycles; loose bound.
        let p = FaultProcess::exponential(secs(1000.0), secs(0.001)).unwrap();
        let mut rng = SimRng::seed_from(3);
        let n = p.windows(secs(1_000_000.0), &mut rng).len() as f64;
        assert!((n - 1000.0).abs() < 150.0, "cycles {n}");
    }

    #[test]
    fn weibull_shape_one_matches_exponential_mean() {
        // k = 1 reduces Weibull to exponential with mean = scale.
        let p = FaultProcess::weibull(1.0, secs(500.0), secs(1.0)).unwrap();
        let mut rng = SimRng::seed_from(9);
        let w = p.windows(secs(2_000_000.0), &mut rng);
        let mean_gap = 2_000_000.0 / w.len() as f64;
        assert!((mean_gap - 501.0).abs() < 60.0, "mean gap {mean_gap}");
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let mut inj = FaultInjector::new();
        inj.add(
            "blade",
            FaultProcess::exponential(secs(500.0), secs(20.0)).unwrap(),
        );
        inj.add(
            "fan",
            FaultProcess::weibull(0.8, secs(2000.0), secs(100.0)).unwrap(),
        );
        let a = inj.trace(secs(50_000.0), 42);
        let b = inj.trace(secs(50_000.0), 42);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = inj.trace(secs(50_000.0), 43);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn components_are_independent_streams() {
        // Adding a second component must not change the first's windows.
        let p = FaultProcess::exponential(secs(500.0), secs(20.0)).unwrap();
        let mut one = FaultInjector::new();
        let b1 = one.add("blade", p);
        let mut two = FaultInjector::new();
        let b2 = two.add("blade", p);
        two.add(
            "fan",
            FaultProcess::exponential(secs(100.0), secs(5.0)).unwrap(),
        );
        let t1 = one.trace(secs(10_000.0), 11);
        let t2 = two.trace(secs(10_000.0), 11);
        assert_eq!(t1.windows(b1), t2.windows(b2));
    }

    #[test]
    fn availability_accounts_downtime() {
        let windows = [
            DownWindow {
                down_at: SimTime::from_nanos(0),
                up_at: SimTime::ZERO + secs(10.0),
            },
            DownWindow {
                down_at: SimTime::ZERO + secs(50.0),
                up_at: SimTime::ZERO + secs(70.0),
            },
        ];
        let a = availability(&windows, secs(100.0));
        assert!((a - 0.70).abs() < 1e-12, "availability {a}");
        assert!(is_down(&windows, SimTime::ZERO + secs(5.0)));
        assert!(is_down(&windows, SimTime::ZERO + secs(60.0)));
        assert!(!is_down(&windows, SimTime::ZERO + secs(20.0)));
        assert!(!is_down(&windows, SimTime::ZERO + secs(99.0)));
    }

    #[test]
    fn windows_clip_to_horizon() {
        let p = FaultProcess {
            ttf: TtfDist::Exponential { mttf: secs(10.0) },
            repair: RepairDist::Fixed(secs(1e9)), // repairs never finish
        };
        let mut rng = SimRng::seed_from(5);
        let w = p.windows(secs(1000.0), &mut rng);
        assert_eq!(w.len(), 1, "one failure, repair outlives horizon");
        assert!(w[0].up_at <= SimTime::ZERO + secs(1000.0));
        let a = availability(&w, secs(1000.0));
        assert!(a < 1.0);
    }

    #[test]
    fn zero_rate_trace_fingerprint_is_stable() {
        let mut inj = FaultInjector::new();
        inj.add("blade", FaultProcess::never());
        let t = inj.trace(secs(1e6), 1);
        assert!(t.events().is_empty());
        assert_eq!(t.fingerprint(), inj.trace(secs(1e6), 2).fingerprint());
    }

    #[test]
    fn flat_weights_reproduce_unweighted_windows() {
        let p = FaultProcess::exponential(secs(300.0), secs(10.0)).unwrap();
        let plain = p.windows(secs(50_000.0), &mut SimRng::seed_from(17));
        let flat = p.windows_weighted(
            secs(50_000.0),
            secs(100.0),
            &[2.5, 2.5, 2.5],
            &mut SimRng::seed_from(17),
        );
        assert_eq!(plain, flat, "full-weight segments must not thin");
    }

    #[test]
    fn weighted_windows_concentrate_in_hot_segments() {
        // Hazard concentrated in the second half of a 2-segment cycle:
        // nearly every accepted failure must start there.
        let p = FaultProcess::exponential(secs(50.0), secs(1.0)).unwrap();
        let seg = secs(500.0);
        let w = p.windows_weighted(
            secs(200_000.0),
            seg,
            &[0.02, 1.0],
            &mut SimRng::seed_from(23),
        );
        assert!(w.len() > 20, "enough samples: {}", w.len());
        let hot = w
            .iter()
            .filter(|win| {
                (win.down_at.as_nanos() / seg.as_nanos()) % 2 == 1 // second segment
            })
            .count();
        let frac = hot as f64 / w.len() as f64;
        assert!(frac > 0.9, "hot-segment fraction {frac}");
    }

    #[test]
    fn weighted_windows_are_deterministic_and_bounded() {
        let p = FaultProcess::exponential(secs(100.0), secs(5.0)).unwrap();
        let run = || {
            p.windows_weighted(
                secs(20_000.0),
                secs(50.0),
                &[1.0, 0.2, 3.0],
                &mut SimRng::seed_from(7),
            )
        };
        let a = run();
        assert_eq!(a, run());
        for pair in a.windows(2) {
            assert!(pair[0].up_at <= pair[1].down_at);
        }
        // Zero weights everywhere: no failures at all.
        let none = p.windows_weighted(
            secs(20_000.0),
            secs(50.0),
            &[0.0, 0.0],
            &mut SimRng::seed_from(7),
        );
        assert!(none.is_empty());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(FaultProcess::exponential(SimDuration::ZERO, secs(1.0)).is_err());
        assert!(FaultProcess::weibull(0.0, secs(1.0), secs(1.0)).is_err());
        assert!(FaultProcess::weibull(1.0, SimDuration::ZERO, secs(1.0)).is_err());
    }
}
