//! Property tests for the sweep service's journal merge: for *any*
//! sharding of a record set across worker journals — with overlapping
//! cells, exact duplicates, interleaved service records, and torn tails —
//! [`merge_journals`] must be order-independent, idempotent, and
//! first-valid-wins. Randomness is driven by [`SimRng`] so failures
//! reproduce.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use wcs_simcore::journal::{self, JournalRecord};
use wcs_simcore::service::{merge_journals, ServiceRecord};
use wcs_simcore::SimRng;

/// Unique temp path per case (std-only; no tempfile crate).
fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("wcs-mprop-{tag}-{}-{n}.wal", std::process::id()))
}

/// A deterministic result record: payload and digest are pure functions
/// of the key, as real sweep cells are (payloads carry a non-service tag).
fn result_record(key: u128) -> JournalRecord {
    let mut rng = SimRng::seed_from(key as u64 ^ (key >> 64) as u64);
    let len = 1 + (rng.next_u64() % 40) as usize;
    let mut payload = vec![0u8];
    payload.extend((0..len).map(|_| rng.next_u64() as u8));
    JournalRecord {
        key,
        digest: ServiceRecord::digest(&payload),
        payload,
    }
}

fn lease(worker: u32, start: u32, end: u32, attempt: u32) -> JournalRecord {
    let r = ServiceRecord::Lease {
        worker,
        start,
        end,
        attempt,
    };
    let payload = r.encode();
    JournalRecord {
        key: r.key(),
        digest: ServiceRecord::digest(&payload),
        payload,
    }
}

fn marker(cell: u32) -> JournalRecord {
    let r = ServiceRecord::CellDone { cell };
    let payload = r.encode();
    JournalRecord {
        key: r.key(),
        digest: ServiceRecord::digest(&payload),
        payload,
    }
}

fn shuffle<T>(items: &mut [T], rng: &mut SimRng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.index(i + 1));
    }
}

/// Random worker journals over a shared cell universe: overlapping
/// ranges (stolen cells recomputed by two workers), exact duplicates,
/// and service records sprinkled throughout.
fn random_inputs(rng: &mut SimRng, cells: u32) -> Vec<Vec<JournalRecord>> {
    let workers = 1 + rng.index(4);
    (0..workers)
        .map(|w| {
            let mut input = Vec::new();
            let start = rng.index(cells as usize) as u32;
            let end = start + 1 + rng.index((cells - start) as usize) as u32;
            input.push(lease(w as u32, start, end, rng.index(3) as u32));
            for cell in start..end {
                // Each "cell" contributes a couple of result records
                // keyed off the cell id — shared across any worker that
                // (re)computed the cell, so overlaps are exact duplicates.
                input.push(result_record(u128::from(cell) * 7 + 1));
                if rng.chance(0.6) {
                    input.push(result_record(u128::from(cell) * 7 + 2));
                }
                if rng.chance(0.8) {
                    input.push(marker(cell));
                }
            }
            input
        })
        .collect()
}

#[test]
fn merge_is_order_independent_for_any_sharding() {
    let mut rng = SimRng::seed_from(0x0B5E_55ED);
    for _case in 0..60 {
        let inputs = random_inputs(&mut rng, 12);
        let reference = merge_journals(&inputs);
        // Permute the journals and the records inside each journal.
        let mut permuted = inputs.clone();
        shuffle(&mut permuted, &mut rng);
        for input in &mut permuted {
            shuffle(input, &mut rng);
        }
        let shuffled = merge_journals(&permuted);
        assert_eq!(
            reference.records, shuffled.records,
            "merge output depended on input order"
        );
        assert_eq!(reference.conflicts, shuffled.conflicts);
        assert_eq!(reference.service_dropped, shuffled.service_dropped);
        // Identical-content overlaps are never conflicts.
        assert_eq!(reference.conflicts, 0, "pure cells cannot conflict");
        // No service record survives into the result set.
        assert!(
            reference
                .records
                .iter()
                .all(|r| ServiceRecord::decode(&r.payload).is_none()),
            "a service record leaked into the merge"
        );
    }
}

#[test]
fn merge_is_idempotent_under_remerge() {
    let mut rng = SimRng::seed_from(0x1D3A_11AD);
    for _case in 0..40 {
        let inputs = random_inputs(&mut rng, 10);
        let once = merge_journals(&inputs);
        // Re-merging the merge with any subset of the originals — or with
        // itself — changes nothing.
        let mut again = vec![once.records.clone()];
        again.extend(inputs.iter().filter(|_| rng.chance(0.5)).cloned());
        again.push(once.records.clone());
        assert_eq!(
            once.records,
            merge_journals(&again).records,
            "re-merge changed the record set"
        );
    }
}

#[test]
fn first_valid_record_wins_per_key() {
    // All copies of a key carry identical bytes (results are pure
    // functions of their keys), so whichever journal is read first
    // supplies the record — and the outcome is the same either way.
    let a = vec![result_record(3), result_record(5)];
    let b = vec![result_record(5), result_record(9)];
    let out = merge_journals(&[a.clone(), b.clone()]);
    assert_eq!(out.records.len(), 3);
    assert_eq!(out.duplicates, 1, "the shared key collapses to one record");
    assert_eq!(out.conflicts, 0);
    for r in &out.records {
        assert_eq!(*r, result_record(r.key), "winner must be the valid record");
    }
    // A genuinely conflicting payload (a corrupted recompute) resolves
    // deterministically and is counted.
    let mut evil = result_record(5);
    evil.payload.push(0xFF);
    evil.digest = ServiceRecord::digest(&evil.payload);
    let with_conflict = merge_journals(&[vec![evil.clone()], a, b]);
    assert!(with_conflict.conflicts >= 1, "the conflict must be counted");
    let resolved = merge_journals(&[with_conflict.records.clone(), vec![evil]]);
    assert_eq!(resolved.records, with_conflict.records, "winner is stable");
}

#[test]
fn torn_tails_merge_to_the_union_of_valid_prefixes() {
    let mut rng = SimRng::seed_from(0x70 + 0x44);
    for case in 0..20u64 {
        // Two workers share cells 0..6; worker 1's journal is torn at a
        // random byte. The merge of the damaged pair must equal the merge
        // of worker 0's full journal with worker 1's valid prefix.
        let full: Vec<Vec<JournalRecord>> = random_inputs(&mut rng, 6);
        let Some(torn_input) = full.last() else {
            continue;
        };
        let path = temp_path(&format!("torn-{case}"));
        let _ = std::fs::remove_file(&path);
        let (_, mut w, _) = journal::open(&path).expect("open fresh");
        for r in torn_input {
            w.append(r.key, r.digest, &r.payload).expect("append");
        }
        w.sync().expect("sync");
        drop(w);
        // Tear the file at a random point past the magic.
        let bytes = std::fs::read(&path).expect("read journal");
        let cut = 8 + rng.index(bytes.len().saturating_sub(8) + 1);
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        let (prefix, _) = journal::replay(&path).expect("replay tolerates tears");
        assert!(prefix.len() <= torn_input.len());
        assert_eq!(&torn_input[..prefix.len()], &prefix[..], "prefix order");

        let mut damaged: Vec<Vec<JournalRecord>> = full[..full.len() - 1].to_vec();
        damaged.push(prefix.clone());
        let merged = merge_journals(&damaged);
        let mut expected_inputs = full[..full.len() - 1].to_vec();
        expected_inputs.push(prefix);
        assert_eq!(
            merged.records,
            merge_journals(&expected_inputs).records,
            "torn tail leaked into the merge"
        );
        // Whatever survived is still valid, service-free content.
        assert!(merged
            .records
            .iter()
            .all(|r| ServiceRecord::digest(&r.payload) == r.digest));
        let _ = std::fs::remove_file(&path);
    }
}
