//! Property tests for the sweep journal's torn-write and corrupt-tail
//! recovery: for *any* truncation point and *any* single bit-flip, replay
//! must return the longest valid record prefix and must never surface a
//! corrupted record. Damage is driven by [`SimRng`] so failures reproduce.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use wcs_simcore::journal::{self, JournalRecord};
use wcs_simcore::SimRng;

/// Unique temp path per case (std-only; no tempfile crate).
fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("wcs-jprop-{tag}-{}-{n}.wal", std::process::id()))
}

/// Deterministic record set with varied payload sizes (including empty).
fn records_for(seed: u64, n: usize) -> Vec<JournalRecord> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|_| {
            let len = (rng.next_u64() % 64) as usize;
            let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            JournalRecord {
                key: (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64()),
                digest: rng.next_u64(),
                payload,
            }
        })
        .collect()
}

fn write_journal(path: &Path, records: &[JournalRecord]) {
    let (replayed, mut w, _) = journal::open(path).expect("open fresh");
    assert!(replayed.is_empty());
    for r in records {
        assert!(w.append(r.key, r.digest, &r.payload).expect("append"));
    }
    w.sync().expect("sync");
}

/// The recovered records must be a prefix of the originals — never a
/// corrupted or reordered record.
fn assert_valid_prefix(recovered: &[JournalRecord], original: &[JournalRecord], ctx: &str) {
    assert!(
        recovered.len() <= original.len(),
        "{ctx}: more records than written"
    );
    for (i, (got, want)) in recovered.iter().zip(original).enumerate() {
        assert_eq!(got, want, "{ctx}: record {i} corrupted");
    }
}

#[test]
fn random_truncation_recovers_longest_valid_prefix() {
    let mut rng = SimRng::seed_from(0xD15C_0B07);
    for case in 0..40u64 {
        let records = records_for(case + 1, 1 + (case as usize % 9));
        let path = temp_path("trunc");
        write_journal(&path, &records);
        let full = std::fs::read(&path).expect("read journal");

        // Truncate at a uniformly random byte offset.
        let cut = (rng.next_u64() as usize) % (full.len() + 1);
        std::fs::write(&path, &full[..cut]).expect("write truncated");

        let (recovered, report) = journal::replay(&path).expect("replay truncated");
        assert_valid_prefix(&recovered, &records, &format!("case {case} cut {cut}"));

        // Longest valid prefix: every record whose frame lies entirely
        // within the cut must be recovered.
        let mut offset = journal::MAGIC.len();
        let mut expect = 0;
        for r in &records {
            offset += 4 + 16 + 8 + 4 + r.payload.len();
            if offset <= cut {
                expect += 1;
            } else {
                break;
            }
        }
        assert_eq!(
            recovered.len(),
            expect,
            "case {case}: cut {cut} of {} must keep {expect} records",
            full.len()
        );
        // A cut exactly on a record boundary leaves a clean (shorter)
        // journal; anywhere else leaves a torn tail. Either way the report
        // must be self-consistent.
        assert_eq!(report.was_torn, report.truncated_bytes > 0);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn random_bit_flips_never_surface_corruption() {
    let mut rng = SimRng::seed_from(0xB17F_11B5);
    for case in 0..40u64 {
        let records = records_for(1000 + case, 2 + (case as usize % 7));
        let path = temp_path("flip");
        write_journal(&path, &records);
        let full = std::fs::read(&path).expect("read journal");

        // Flip one random bit anywhere after the magic.
        let mut damaged = full.clone();
        let at =
            journal::MAGIC.len() + (rng.next_u64() as usize) % (full.len() - journal::MAGIC.len());
        let bit = 1u8 << (rng.next_u64() % 8);
        damaged[at] ^= bit;
        std::fs::write(&path, &damaged).expect("write damaged");

        let (recovered, _report) = journal::replay(&path).expect("replay damaged");
        // CRC collisions on a single bit flip are impossible (CRC-32
        // detects all 1-bit errors), so the flipped record and everything
        // after it must be dropped, everything before recovered intact.
        assert_valid_prefix(&recovered, &records, &format!("case {case} flip at {at}"));
        let mut offset = journal::MAGIC.len();
        let mut before_flip = 0;
        for r in &records {
            let end = offset + 4 + 16 + 8 + 4 + r.payload.len();
            if end <= at {
                before_flip += 1;
                offset = end;
            } else {
                break;
            }
        }
        assert_eq!(
            recovered.len(),
            before_flip,
            "case {case}: flip at byte {at} must keep exactly the records before it"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn open_after_damage_heals_and_appends_cleanly() {
    let mut rng = SimRng::seed_from(0x4EA1_5EED);
    for case in 0..20u64 {
        let records = records_for(2000 + case, 3 + (case as usize % 5));
        let path = temp_path("heal");
        write_journal(&path, &records);
        let full = std::fs::read(&path).expect("read journal");

        // Damage: truncate, then append garbage (torn rewrite).
        let cut = journal::MAGIC.len()
            + (rng.next_u64() as usize) % (full.len() - journal::MAGIC.len() + 1);
        let mut damaged = full[..cut].to_vec();
        let garbage = (rng.next_u64() % 24) as usize;
        damaged.extend((0..garbage).map(|_| rng.next_u64() as u8));
        std::fs::write(&path, &damaged).expect("write damaged");

        // Open heals: truncates the tail, keeps the valid prefix.
        let (recovered, mut w, _) = journal::open(&path).expect("open damaged");
        assert_valid_prefix(&recovered, &records, &format!("case {case}"));

        // Appending the *missing* records restores the full set.
        for r in &records[recovered.len()..] {
            assert!(w
                .append(r.key, r.digest, &r.payload)
                .expect("append missing"));
        }
        drop(w);
        let (healed, report) = journal::replay(&path).expect("replay healed");
        assert_eq!(
            healed, records,
            "case {case}: healed journal must equal original"
        );
        assert!(
            !report.was_torn,
            "case {case}: healed journal must be clean"
        );
        std::fs::remove_file(&path).ok();
    }
}
