//! Algebraic properties of [`Registry::merge`], exercised with
//! SimRng-driven random operation sequences: merging per-worker forks
//! must be associative and commutative, or per-thread aggregation order
//! would leak into reported metrics.

use wcs_simcore::obs::Registry;
use wcs_simcore::SimRng;

/// One randomly generated metric operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Count(usize, u64),
    WallCount(usize, u64),
    Max(usize, u64),
    Hist(usize, u64),
}

const COUNTERS: [&str; 3] = ["queue.scheduled", "faults.retries", "memshare.page_faults"];
const WALL: [&str; 2] = ["memo.perf.hits", "memo.perf.misses"];
const GAUGES: [&str; 2] = ["queue.max_depth", "pool.peak"];
const HISTS: [&str; 2] = ["flashcache.latency_ns", "cooling.fan_w"];

/// A random op sequence, long enough to hit every series several times.
fn random_ops(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = SimRng::seed_from(seed);
    (0..len)
        .map(|_| {
            let v = rng.next_u64() >> 32;
            match rng.next_u64() % 4 {
                0 => Op::Count(rng.next_u64() as usize % COUNTERS.len(), v),
                1 => Op::WallCount(rng.next_u64() as usize % WALL.len(), v),
                2 => Op::Max(rng.next_u64() as usize % GAUGES.len(), v),
                _ => Op::Hist(rng.next_u64() as usize % HISTS.len(), v % 1_000_000),
            }
        })
        .collect()
}

/// A fresh enabled registry with `ops` applied.
fn apply(ops: &[Op]) -> Registry {
    let reg = Registry::new();
    for op in ops {
        match *op {
            Op::Count(i, v) => reg.counter(COUNTERS[i]).add(v),
            Op::WallCount(i, v) => reg.wall_counter(WALL[i]).add(v),
            Op::Max(i, v) => reg.max_gauge(GAUGES[i]).observe(v),
            Op::Hist(i, v) => reg.histogram(HISTS[i]).record(v),
        }
    }
    reg
}

#[test]
fn merge_is_commutative() {
    for seed in 1..=8u64 {
        let a_ops = random_ops(seed, 200);
        let b_ops = random_ops(seed.wrapping_mul(0x9E37_79B9), 200);

        let ab = apply(&a_ops);
        ab.merge(&apply(&b_ops));
        let ba = apply(&b_ops);
        ba.merge(&apply(&a_ops));

        assert_eq!(
            ab.snapshot().to_json(),
            ba.snapshot().to_json(),
            "merge order changed the snapshot (seed {seed})"
        );
    }
}

#[test]
fn merge_is_associative() {
    for seed in 1..=8u64 {
        let a_ops = random_ops(seed, 150);
        let b_ops = random_ops(seed + 100, 150);
        let c_ops = random_ops(seed + 200, 150);

        // (a · b) · c
        let left = apply(&a_ops);
        left.merge(&apply(&b_ops));
        left.merge(&apply(&c_ops));
        // a · (b · c)
        let bc = apply(&b_ops);
        bc.merge(&apply(&c_ops));
        let right = apply(&a_ops);
        right.merge(&bc);

        assert_eq!(
            left.snapshot().to_json(),
            right.snapshot().to_json(),
            "merge grouping changed the snapshot (seed {seed})"
        );
    }
}

#[test]
fn merge_matches_single_registry_recording() {
    // Forking per worker and merging must equal recording everything
    // into one registry — the property the evaluator's fan-out relies
    // on.
    for seed in [3u64, 17, 99] {
        let ops = random_ops(seed, 300);
        let (front, back) = ops.split_at(ops.len() / 2);

        let whole = apply(&ops);
        let merged = apply(front);
        merged.merge(&apply(back));

        assert_eq!(
            whole.snapshot().to_json(),
            merged.snapshot().to_json(),
            "split recording diverged from single-registry recording (seed {seed})"
        );
    }
}
