//! Availability-adjusted efficiency metrics.
//!
//! The paper's Perf/TCO-$ metrics assume every server delivers its
//! sustained performance for the whole 3-year depreciation cycle.
//! Ensemble-level sharing weakens that assumption — a memory blade or
//! fan-wall failure degrades many servers at once — so this module
//! burdens the metrics with failures: delivered performance scales
//! with availability, and each repair event adds a service cost to the
//! TCO denominator.

use wcs_simcore::ConfigError;

use crate::metrics::{Efficiency, RelativeEfficiency};

/// Availability and repair-cost parameters for one design.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AvailabilityModel {
    /// Fraction of time the design delivers its nominal performance,
    /// in `(0, 1]`.
    pub availability: f64,
    /// Expected failure (and thus repair) events per server-year.
    pub repairs_per_year: f64,
    /// Service cost per repair event (technician time + parts), USD.
    pub repair_cost_usd: f64,
}

impl AvailabilityModel {
    /// A design that never fails: the adjusted metrics collapse to the
    /// paper's originals.
    pub fn perfect() -> Self {
        AvailabilityModel {
            availability: 1.0,
            repairs_per_year: 0.0,
            repair_cost_usd: 0.0,
        }
    }

    /// Builds a model from explicit parameters.
    ///
    /// # Errors
    /// Rejects availability outside `(0, 1]` and negative rates or
    /// costs.
    pub fn new(
        availability: f64,
        repairs_per_year: f64,
        repair_cost_usd: f64,
    ) -> Result<Self, ConfigError> {
        ConfigError::check_f64(
            "availability",
            availability,
            "must be in (0, 1]",
            availability > 0.0 && availability <= 1.0,
        )?;
        ConfigError::check_f64(
            "repairs_per_year",
            repairs_per_year,
            "must be >= 0",
            repairs_per_year >= 0.0,
        )?;
        ConfigError::check_f64(
            "repair_cost_usd",
            repair_cost_usd,
            "must be >= 0",
            repair_cost_usd >= 0.0,
        )?;
        Ok(AvailabilityModel {
            availability,
            repairs_per_year,
            repair_cost_usd,
        })
    }

    /// Derives the model from MTTF / MTTR in hours:
    /// `A = MTTF / (MTTF + MTTR)`, with `8766 / (MTTF + MTTR)` repair
    /// events per year.
    ///
    /// # Errors
    /// Rejects non-positive MTTF, negative MTTR, or a negative cost.
    pub fn from_mttf_mttr(
        mttf_hours: f64,
        mttr_hours: f64,
        repair_cost_usd: f64,
    ) -> Result<Self, ConfigError> {
        ConfigError::check_f64("mttf_hours", mttf_hours, "must be > 0", mttf_hours > 0.0)?;
        ConfigError::check_f64("mttr_hours", mttr_hours, "must be >= 0", mttr_hours >= 0.0)?;
        let cycle = mttf_hours + mttr_hours;
        AvailabilityModel::new(mttf_hours / cycle, 8766.0 / cycle, repair_cost_usd)
    }

    /// Total repair spend over `years` of operation, USD.
    pub fn repair_cost_over(&self, years: f64) -> f64 {
        self.repairs_per_year * years * self.repair_cost_usd
    }
}

/// An [`Efficiency`] burdened with failures: performance delivered only
/// while up, repair costs folded into the TCO denominator over the
/// depreciation period.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AvailableEfficiency {
    /// The unburdened efficiency.
    pub base: Efficiency,
    /// Failure and repair parameters.
    pub model: AvailabilityModel,
    /// Depreciation period the repair costs accrue over (the paper uses
    /// 3 years).
    pub years: f64,
}

impl AvailableEfficiency {
    /// Burdens `base` with `model` over `years` of operation.
    ///
    /// # Errors
    /// Rejects a non-positive depreciation period.
    pub fn new(
        base: Efficiency,
        model: AvailabilityModel,
        years: f64,
    ) -> Result<Self, ConfigError> {
        ConfigError::check_f64("years", years, "must be > 0", years > 0.0)?;
        Ok(AvailableEfficiency { base, model, years })
    }

    /// Performance actually delivered: nominal scaled by availability.
    pub fn effective_perf(&self) -> f64 {
        self.base.perf * self.model.availability
    }

    /// TCO including repair events over the depreciation period, USD.
    pub fn adjusted_total_usd(&self) -> f64 {
        self.base.report.total_usd() + self.model.repair_cost_over(self.years)
    }

    /// Availability-adjusted Perf/W (power draw is unchanged; downtime
    /// wastes the idle floor, conservatively charged in full).
    pub fn perf_per_watt(&self) -> f64 {
        self.effective_perf() / self.base.report.power_w()
    }

    /// Availability-adjusted Perf/Inf-$.
    pub fn perf_per_inf(&self) -> f64 {
        self.effective_perf() / self.base.report.inf_usd()
    }

    /// Availability-adjusted Perf/P&C-$.
    pub fn perf_per_pc(&self) -> f64 {
        self.effective_perf() / self.base.report.pc_usd()
    }

    /// The headline metric with failures priced in: delivered
    /// performance per repair-burdened TCO dollar.
    pub fn perf_per_tco(&self) -> f64 {
        self.effective_perf() / self.adjusted_total_usd()
    }

    /// All metrics relative to another (possibly differently-burdened)
    /// design.
    pub fn relative_to(&self, baseline: &AvailableEfficiency) -> RelativeEfficiency {
        RelativeEfficiency {
            perf: self.effective_perf() / baseline.effective_perf(),
            perf_per_watt: self.perf_per_watt() / baseline.perf_per_watt(),
            perf_per_inf: self.perf_per_inf() / baseline.perf_per_inf(),
            perf_per_pc: self.perf_per_pc() / baseline.perf_per_pc(),
            perf_per_tco: self.perf_per_tco() / baseline.perf_per_tco(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TcoModel;
    use wcs_platforms::{catalog, PlatformId};

    fn eff(perf: f64, id: PlatformId) -> Efficiency {
        Efficiency::new(
            perf,
            TcoModel::paper_default().server_tco(&catalog::platform(id)),
        )
    }

    #[test]
    fn perfect_model_reproduces_unburdened_metrics() {
        let base = eff(100.0, PlatformId::Srvr1);
        let adj =
            AvailableEfficiency::new(base.clone(), AvailabilityModel::perfect(), 3.0).unwrap();
        assert_eq!(adj.effective_perf(), base.perf);
        assert_eq!(adj.adjusted_total_usd(), base.report.total_usd());
        assert_eq!(adj.perf_per_tco(), base.perf_per_tco());
        assert_eq!(adj.perf_per_watt(), base.perf_per_watt());
    }

    #[test]
    fn downtime_and_repairs_both_tax_the_metric() {
        let base = eff(100.0, PlatformId::Srvr1);
        let faulty = AvailabilityModel::new(0.99, 2.0, 150.0).unwrap();
        let adj = AvailableEfficiency::new(base.clone(), faulty, 3.0).unwrap();
        assert!(adj.effective_perf() < base.perf);
        // 2 repairs/yr * 3 yr * $150 = $900 extra TCO.
        assert!((adj.adjusted_total_usd() - base.report.total_usd() - 900.0).abs() < 1e-9);
        assert!(adj.perf_per_tco() < base.perf_per_tco());
    }

    #[test]
    fn mttf_mttr_availability_formula() {
        // 999 h MTTF, 1 h MTTR -> 99.9% availability, ~8.77 repairs/yr.
        let m = AvailabilityModel::from_mttf_mttr(999.0, 1.0, 50.0).unwrap();
        assert!((m.availability - 0.999).abs() < 1e-12);
        assert!((m.repairs_per_year - 8766.0 / 1000.0).abs() < 1e-12);
        assert!((m.repair_cost_over(3.0) - 3.0 * 8.766 * 50.0).abs() < 1e-9);
    }

    #[test]
    fn shared_infrastructure_can_flip_a_ranking() {
        // The cheap dense design wins on paper, but give it a blade
        // dependency with worse availability and a per-event cost and
        // the gap narrows — the paper's Section 4 reliability caveat,
        // quantified.
        let srvr = AvailableEfficiency::new(
            eff(1.0, PlatformId::Srvr1),
            AvailabilityModel::new(0.999, 0.5, 200.0).unwrap(),
            3.0,
        )
        .unwrap();
        let dense_healthy = AvailableEfficiency::new(
            eff(0.27, PlatformId::Emb1),
            AvailabilityModel::new(0.999, 0.5, 200.0).unwrap(),
            3.0,
        )
        .unwrap();
        let dense_fragile = AvailableEfficiency::new(
            eff(0.27, PlatformId::Emb1),
            AvailabilityModel::new(0.96, 12.0, 200.0).unwrap(),
            3.0,
        )
        .unwrap();
        let healthy = dense_healthy.relative_to(&srvr).perf_per_tco;
        let fragile = dense_fragile.relative_to(&srvr).perf_per_tco;
        // Even healthy, flat per-event repair costs weigh more against
        // a cheap server's small TCO — the win shrinks from the
        // unburdened ~1.9x but survives.
        assert!(
            healthy > 1.2,
            "healthy dense design keeps its win ({healthy})"
        );
        assert!(fragile < healthy, "failures must erode the advantage");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(AvailabilityModel::new(0.0, 1.0, 1.0).is_err());
        assert!(AvailabilityModel::new(1.1, 1.0, 1.0).is_err());
        assert!(AvailabilityModel::new(0.9, -1.0, 1.0).is_err());
        assert!(AvailabilityModel::new(0.9, 1.0, -1.0).is_err());
        assert!(AvailabilityModel::from_mttf_mttr(0.0, 1.0, 1.0).is_err());
        let base = eff(1.0, PlatformId::Desk);
        assert!(AvailableEfficiency::new(base, AvailabilityModel::perfect(), 0.0).is_err());
    }
}
