//! Performance-per-cost efficiency metrics (Section 2.2).

use std::fmt;

use crate::report::TcoReport;

/// A performance number paired with a TCO report, exposing the paper's
/// efficiency metrics: Perf/W, Perf/Inf-$, Perf/P&C-$, Perf/TCO-$.
///
/// Performance is workload-defined (requests/second for the interactive
/// benchmarks, 1/execution-time for mapreduce); the metrics only require
/// it to be a positive "bigger is better" scalar.
///
/// # Example
/// ```
/// use wcs_platforms::{catalog, PlatformId};
/// use wcs_tco::{Efficiency, TcoModel};
/// let model = TcoModel::paper_default();
/// let base = Efficiency::new(100.0, model.server_tco(&catalog::platform(PlatformId::Srvr1)));
/// let emb = Efficiency::new(27.0, model.server_tco(&catalog::platform(PlatformId::Emb1)));
/// let rel = emb.relative_to(&base);
/// assert!(rel.perf_per_tco > 1.0); // emb1 wins on Perf/TCO-$
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Efficiency {
    /// Sustained performance (workload-defined units).
    pub perf: f64,
    /// The TCO report for the design delivering that performance.
    pub report: TcoReport,
}

impl Efficiency {
    /// Pairs a performance figure with a TCO report.
    ///
    /// # Panics
    /// Panics unless `perf` is positive and finite.
    pub fn new(perf: f64, report: TcoReport) -> Self {
        assert!(perf.is_finite() && perf > 0.0, "perf must be positive");
        Efficiency { perf, report }
    }

    /// Performance per watt of maximum operational power.
    pub fn perf_per_watt(&self) -> f64 {
        self.perf / self.report.power_w()
    }

    /// Performance per infrastructure dollar.
    pub fn perf_per_inf(&self) -> f64 {
        self.perf / self.report.inf_usd()
    }

    /// Performance per burdened power-and-cooling dollar.
    pub fn perf_per_pc(&self) -> f64 {
        self.perf / self.report.pc_usd()
    }

    /// Performance per total-cost-of-ownership dollar — the paper's
    /// headline metric.
    pub fn perf_per_tco(&self) -> f64 {
        self.perf / self.report.total_usd()
    }

    /// All four metrics relative to a baseline (1.0 = parity with the
    /// baseline; the paper's figures report these as percentages).
    pub fn relative_to(&self, baseline: &Efficiency) -> RelativeEfficiency {
        RelativeEfficiency {
            perf: self.perf / baseline.perf,
            perf_per_watt: self.perf_per_watt() / baseline.perf_per_watt(),
            perf_per_inf: self.perf_per_inf() / baseline.perf_per_inf(),
            perf_per_pc: self.perf_per_pc() / baseline.perf_per_pc(),
            perf_per_tco: self.perf_per_tco() / baseline.perf_per_tco(),
        }
    }
}

/// Efficiency metrics of one design normalized to a baseline design.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RelativeEfficiency {
    /// Relative performance.
    pub perf: f64,
    /// Relative Perf/W.
    pub perf_per_watt: f64,
    /// Relative Perf/Inf-$.
    pub perf_per_inf: f64,
    /// Relative Perf/P&C-$.
    pub perf_per_pc: f64,
    /// Relative Perf/TCO-$.
    pub perf_per_tco: f64,
}

impl fmt::Display for RelativeEfficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "perf {:.0}% | /W {:.0}% | /Inf-$ {:.0}% | /P&C-$ {:.0}% | /TCO-$ {:.0}%",
            self.perf * 100.0,
            self.perf_per_watt * 100.0,
            self.perf_per_inf * 100.0,
            self.perf_per_pc * 100.0,
            self.perf_per_tco * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TcoModel;
    use wcs_platforms::{catalog, PlatformId};

    fn eff(perf: f64, id: PlatformId) -> Efficiency {
        Efficiency::new(
            perf,
            TcoModel::paper_default().server_tco(&catalog::platform(id)),
        )
    }

    #[test]
    fn relative_to_self_is_unity() {
        let e = eff(10.0, PlatformId::Desk);
        let r = e.relative_to(&e);
        assert!((r.perf - 1.0).abs() < 1e-12);
        assert!((r.perf_per_tco - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_consistent() {
        let e = eff(100.0, PlatformId::Srvr2);
        assert!((e.perf_per_tco() - 100.0 / e.report.total_usd()).abs() < 1e-12);
        assert!(e.perf_per_inf() > e.perf_per_tco());
        assert!(e.perf_per_pc() > e.perf_per_tco());
    }

    #[test]
    fn emb1_fig2_sanity() {
        // With the paper's HMean relative performance (27% of srvr1),
        // emb1 should land near Fig 2(c)'s 192% Perf/TCO-$ and 181% Perf/W.
        let base = eff(1.0, PlatformId::Srvr1);
        let emb1 = eff(0.27, PlatformId::Emb1);
        let rel = emb1.relative_to(&base);
        assert!(
            (rel.perf_per_tco - 1.92).abs() < 0.2,
            "perf/tco {}",
            rel.perf_per_tco
        );
        assert!(
            (rel.perf_per_watt - 1.81).abs() < 0.2,
            "perf/W {}",
            rel.perf_per_watt
        );
        assert!(
            (rel.perf_per_inf - 2.01).abs() < 0.25,
            "perf/inf {}",
            rel.perf_per_inf
        );
    }

    #[test]
    #[should_panic(expected = "perf must be positive")]
    fn rejects_zero_perf() {
        eff(0.0, PlatformId::Desk);
    }

    #[test]
    fn display_formats_percent() {
        let e = eff(5.0, PlatformId::Desk);
        let r = e.relative_to(&e);
        assert!(r.to_string().contains("100%"));
    }
}
