//! TCO sensitivity analysis: which component should a designer attack?
//!
//! Figure 1(b)'s argument is that "a number of other components together
//! contribute equally to the overall costs", so "solutions need to
//! holistically address multiple components". This module quantifies
//! that: for each BOM line, the marginal Perf/TCO-$ improvement from
//! shaving 10% off its cost or its power — a ranked to-do list for the
//! designer.

use wcs_platforms::{BomItem, Component, Platform};

use crate::model::TcoModel;

/// One component's leverage on the design's TCO.
#[derive(Debug, Clone, Copy)]
pub struct Leverage {
    /// The component.
    pub component: Component,
    /// Relative TCO reduction from cutting this line's hardware cost by
    /// `delta` (e.g. 0.012 = 1.2% of TCO).
    pub cost_leverage: f64,
    /// Relative TCO reduction from cutting this line's power by `delta`.
    pub power_leverage: f64,
}

impl Leverage {
    /// Combined leverage: the TCO saved if both cost and power improve.
    pub fn total(&self) -> f64 {
        self.cost_leverage + self.power_leverage
    }
}

/// Computes each BOM line's leverage on the platform's TCO for a
/// fractional improvement `delta` (0.10 = shave 10%).
///
/// # Panics
/// Panics unless `delta` is in `(0, 1)`.
pub fn component_leverage(model: &TcoModel, platform: &Platform, delta: f64) -> Vec<Leverage> {
    assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
    let base = model.server_tco(platform).total_usd();
    let mut out = Vec::new();
    for item in platform.bom() {
        let cheaper = platform.with_component(BomItem::new(
            item.component,
            item.cost_usd * (1.0 - delta),
            item.power_w,
        ));
        let cooler = platform.with_component(BomItem::new(
            item.component,
            item.cost_usd,
            item.power_w * (1.0 - delta),
        ));
        out.push(Leverage {
            component: item.component,
            cost_leverage: 1.0 - model.server_tco(&cheaper).total_usd() / base,
            power_leverage: 1.0 - model.server_tco(&cooler).total_usd() / base,
        });
    }
    out.sort_by(|a, b| b.total().partial_cmp(&a.total()).expect("finite"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_platforms::{catalog, PlatformId};

    #[test]
    fn cpu_is_the_biggest_lever_on_srvr2() {
        // Figure 1(b): CPU hardware and CPU P&C are the two largest TCO
        // components of srvr2, so the CPU line must rank first.
        let model = TcoModel::paper_default();
        let lv = component_leverage(&model, &catalog::platform(PlatformId::Srvr2), 0.10);
        assert_eq!(lv[0].component, Component::Cpu);
        // And the paper's "holistic" point: the rest together outweigh
        // the CPU.
        let cpu = lv[0].total();
        let rest: f64 = lv[1..].iter().map(Leverage::total).sum();
        assert!(rest > cpu, "rest {rest} vs cpu {cpu}");
    }

    #[test]
    fn leverage_scales_with_delta() {
        let model = TcoModel::paper_default();
        let p = catalog::platform(PlatformId::Desk);
        let small = component_leverage(&model, &p, 0.05);
        let large = component_leverage(&model, &p, 0.10);
        let f = |lvs: &[Leverage]| {
            lvs.iter()
                .find(|l| l.component == Component::Cpu)
                .unwrap()
                .total()
        };
        let ratio = f(&large) / f(&small);
        assert!((ratio - 2.0).abs() < 1e-6, "linear in delta: {ratio}");
    }

    #[test]
    fn leverages_sum_to_delta() {
        // Cutting every line by delta cuts the whole TCO by delta, so
        // the leverages must sum to it (burdened P&C is linear in power).
        let model = TcoModel::paper_default();
        let p = catalog::platform(PlatformId::Emb1);
        let lv = component_leverage(&model, &p, 0.10);
        let total: f64 = lv.iter().map(Leverage::total).sum();
        // The rack-switch share is not in the platform BOM, so the sum
        // falls just short of delta.
        assert!(total > 0.085 && total < 0.1001, "sum {total}");
    }

    #[test]
    fn power_leverage_reflects_burdened_costs() {
        // On srvr1 the CPU draws 210 W of 340 W; its power leverage must
        // dwarf the memory's (25 W).
        let model = TcoModel::paper_default();
        let lv = component_leverage(&model, &catalog::platform(PlatformId::Srvr1), 0.10);
        let get = |c: Component| lv.iter().find(|l| l.component == c).unwrap().power_leverage;
        assert!(get(Component::Cpu) > 5.0 * get(Component::Memory));
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        let model = TcoModel::paper_default();
        component_leverage(&model, &catalog::platform(PlatformId::Desk), 1.5);
    }
}
