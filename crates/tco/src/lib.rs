//! Cost, power, and total-cost-of-ownership models.
//!
//! Implements the paper's Section 2.2 evaluation metrics:
//!
//! * per-server **infrastructure cost** (hardware BOM plus an amortized
//!   rack-switch share),
//! * **burdened power & cooling cost** over a 3-year depreciation cycle
//!   using the Patel–Shah model:
//!
//!   ```text
//!   PowerCoolingCost = (1 + K1 + L1 + K2*L1) * U_grid * P_consumed
//!   ```
//!
//!   where `K1` amortizes power-delivery infrastructure, `L1` is cooling
//!   electricity per watt of IT load, `K2` amortizes the cooling plant,
//!   and `U_grid` is the electricity tariff,
//! * the derived efficiency metrics **Perf/W**, **Perf/Inf-$**,
//!   **Perf/P&C-$**, and **Perf/TCO-$**.
//!
//! With the paper's defaults (K1 = 1.33, L1 = 0.8, K2 = 0.667, $100/MWh,
//! activity factor 0.75, 40 servers/rack, $2,750 / 40 W switch) this
//! reproduces Figure 1(a) exactly: srvr1 -> $2,464 3-year P&C and $5,758
//! total; srvr2 -> $1,561 and $3,249.
//!
//! # Example
//! ```
//! use wcs_platforms::{catalog, PlatformId};
//! use wcs_tco::TcoModel;
//!
//! let model = TcoModel::paper_default();
//! let report = model.server_tco(&catalog::platform(PlatformId::Srvr1));
//! assert!((report.total_usd() - 5758.0).abs() < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
mod metrics;
mod model;
mod params;
pub mod realestate;
pub mod render;
mod report;
pub mod sensitivity;

pub use availability::{AvailabilityModel, AvailableEfficiency};
pub use metrics::{Efficiency, RelativeEfficiency};
pub use model::TcoModel;
pub use params::{BurdenedParams, RackConfig};
pub use realestate::RealEstateParams;
pub use report::TcoReport;
