//! Markdown rendering of cost reports, for dropping into documents.

use std::fmt::Write as _;

use wcs_platforms::Component;

use crate::report::TcoReport;

/// Renders one report as a markdown table (component rows, HW / W / P&C
/// columns, totals row).
///
/// # Example
/// ```
/// use wcs_platforms::{catalog, PlatformId};
/// use wcs_tco::{render, TcoModel};
/// let r = TcoModel::paper_default().server_tco(&catalog::platform(PlatformId::Srvr2));
/// let md = render::report_markdown(&r);
/// assert!(md.contains("| CPU |"));
/// assert!(md.contains("**total**"));
/// ```
pub fn report_markdown(report: &TcoReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {}", report.name);
    let _ = writeln!(out, "| component | HW $ | W | P&C $ |");
    let _ = writeln!(out, "|---|---:|---:|---:|");
    for line in report.lines() {
        let _ = writeln!(
            out,
            "| {} | {:.0} | {:.1} | {:.0} |",
            line.component, line.hw_usd, line.power_w, line.pc_usd
        );
    }
    let _ = writeln!(
        out,
        "| **total** | **{:.0}** | **{:.1}** | **{:.0}** |",
        report.inf_usd(),
        report.power_w(),
        report.pc_usd()
    );
    let _ = writeln!(out, "\nTCO: **${:.0}**", report.total_usd());
    out
}

/// Renders several reports side by side: one row per component, one
/// column pair (HW, P&C) per report.
pub fn comparison_markdown(reports: &[&TcoReport]) -> String {
    let mut out = String::new();
    let mut header = String::from("| component |");
    let mut rule = String::from("|---|");
    for r in reports {
        let _ = write!(header, " {} HW $ | {} P&C $ |", r.name, r.name);
        rule.push_str("---:|---:|");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    for c in Component::ALL {
        if reports.iter().all(|r| r.line(c).is_none()) {
            continue;
        }
        let mut row = format!("| {c} |");
        for r in reports {
            match r.line(c) {
                Some(l) => {
                    let _ = write!(row, " {:.0} | {:.0} |", l.hw_usd, l.pc_usd);
                }
                None => row.push_str(" – | – |"),
            }
        }
        let _ = writeln!(out, "{row}");
    }
    let mut total = String::from("| **total** |");
    for r in reports {
        let _ = write!(total, " **{:.0}** | **{:.0}** |", r.inf_usd(), r.pc_usd());
    }
    let _ = writeln!(out, "{total}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TcoModel;
    use wcs_platforms::{catalog, PlatformId};

    #[test]
    fn report_contains_all_lines_and_totals() {
        let r = TcoModel::paper_default().server_tco(&catalog::platform(PlatformId::Srvr1));
        let md = report_markdown(&r);
        for needle in [
            "| CPU |",
            "| Memory |",
            "| Disk |",
            "Rack+switch",
            "TCO: **$5758**",
        ] {
            assert!(md.contains(needle), "missing {needle} in:\n{md}");
        }
    }

    #[test]
    fn comparison_renders_multiple_columns() {
        let model = TcoModel::paper_default();
        let a = model.server_tco(&catalog::platform(PlatformId::Srvr1));
        let b = model.server_tco(&catalog::platform(PlatformId::Emb1));
        let md = comparison_markdown(&[&a, &b]);
        assert!(md.contains("srvr1 HW $"));
        assert!(md.contains("emb1 HW $"));
        // One component column + 2 reports x 2 columns.
        let header_cols = md.lines().next().unwrap().matches('|').count();
        assert_eq!(header_cols, 6);
    }

    #[test]
    fn absent_components_are_dashes_or_skipped() {
        let model = TcoModel::paper_default();
        let r = model.server_tco(&catalog::platform(PlatformId::Desk));
        let md = comparison_markdown(&[&r]);
        assert!(!md.contains("| Flash |"), "absent everywhere: skipped");
    }
}
