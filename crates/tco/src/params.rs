//! Cost-model parameters.

/// Parameters of the Patel–Shah burdened power-and-cooling cost model,
/// plus the operational assumptions the paper layers on top (activity
/// factor, depreciation period).
///
/// # Example
/// ```
/// use wcs_tco::BurdenedParams;
/// let p = BurdenedParams::paper_default();
/// assert!((p.multiplier() - 3.6636).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BurdenedParams {
    /// Amortized power-delivery infrastructure cost per electricity
    /// dollar (paper default 1.33).
    pub k1: f64,
    /// Cooling electricity per watt of IT electricity (paper default 0.8).
    pub l1: f64,
    /// Amortized cooling-plant capital cost per cooling-electricity
    /// dollar (paper default 0.667).
    pub k2: f64,
    /// Electricity tariff in dollars per MWh (paper default $100; the
    /// paper quotes a realistic range of $50–$170).
    pub tariff_usd_per_mwh: f64,
    /// Fraction of maximum operational power actually drawn on average
    /// (paper default 0.75; studied range 0.5–1.0).
    pub activity_factor: f64,
    /// Depreciation period in years (paper default 3).
    pub years: f64,
}

/// Hours per year, using the 365.25-day civil year.
pub(crate) const HOURS_PER_YEAR: f64 = 8766.0;

impl BurdenedParams {
    /// The paper's Section 2.2 defaults.
    pub fn paper_default() -> Self {
        BurdenedParams {
            k1: 1.33,
            l1: 0.8,
            k2: 0.667,
            tariff_usd_per_mwh: 100.0,
            activity_factor: 0.75,
            years: 3.0,
        }
    }

    /// The burdening multiplier `1 + K1 + L1 + K2*L1` applied to raw
    /// electricity cost.
    pub fn multiplier(&self) -> f64 {
        1.0 + self.k1 + self.l1 + self.k2 * self.l1
    }

    /// Burdened power-and-cooling cost over the depreciation period for a
    /// device with the given maximum operational power.
    ///
    /// # Panics
    /// Panics if `max_power_w` is negative or non-finite.
    pub fn burdened_cost_usd(&self, max_power_w: f64) -> f64 {
        assert!(
            max_power_w.is_finite() && max_power_w >= 0.0,
            "power must be finite and >= 0"
        );
        let consumed_w = max_power_w * self.activity_factor;
        let mwh = consumed_w * HOURS_PER_YEAR * self.years / 1e9 * 1e3;
        self.multiplier() * self.tariff_usd_per_mwh * mwh
    }

    /// Returns a copy with a different tariff (for the $50–$170/MWh
    /// sensitivity study).
    pub fn with_tariff(mut self, usd_per_mwh: f64) -> Self {
        assert!(usd_per_mwh.is_finite() && usd_per_mwh > 0.0);
        self.tariff_usd_per_mwh = usd_per_mwh;
        self
    }

    /// Returns a copy with a different activity factor (0.5–1.0 study).
    ///
    /// # Panics
    /// Panics unless `af` is in `(0, 1]`.
    pub fn with_activity_factor(mut self, af: f64) -> Self {
        assert!(
            af.is_finite() && af > 0.0 && af <= 1.0,
            "activity factor in (0,1]"
        );
        self.activity_factor = af;
        self
    }

    /// Returns a copy with the cooling terms (`L1`, `K2`) scaled by
    /// `factor` — how the cooling crate expresses improved cooling
    /// efficiency (e.g. 0.5 for the dual-entry enclosure's ~50% gain).
    ///
    /// # Panics
    /// Panics unless `factor` is positive and finite.
    pub fn with_cooling_scale(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "cooling scale must be > 0"
        );
        self.l1 *= factor;
        // K2 is capital per cooling-electricity dollar; the plant also
        // shrinks with the load it must support, so it scales together
        // with L1 through the L1*K2 product automatically.
        self
    }
}

impl Default for BurdenedParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Rack-level aggregation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RackConfig {
    /// Servers per rack (paper default 40 for 1U "pizza boxes").
    pub servers_per_rack: u32,
    /// Switch + enclosure cost per rack.
    pub switch_cost_usd: f64,
    /// Switch power per rack in watts.
    pub switch_power_w: f64,
}

impl RackConfig {
    /// The paper's default rack: 40 servers, $2,750 switch, 40 W.
    pub fn paper_default() -> Self {
        RackConfig {
            servers_per_rack: 40,
            switch_cost_usd: 2750.0,
            switch_power_w: 40.0,
        }
    }

    /// Creates a rack configuration.
    ///
    /// # Panics
    /// Panics if `servers_per_rack` is zero or costs/power are invalid.
    pub fn new(servers_per_rack: u32, switch_cost_usd: f64, switch_power_w: f64) -> Self {
        assert!(servers_per_rack > 0, "rack must hold at least one server");
        assert!(switch_cost_usd.is_finite() && switch_cost_usd >= 0.0);
        assert!(switch_power_w.is_finite() && switch_power_w >= 0.0);
        RackConfig {
            servers_per_rack,
            switch_cost_usd,
            switch_power_w,
        }
    }

    /// Per-server share of switch cost.
    pub fn switch_cost_share(&self) -> f64 {
        self.switch_cost_usd / self.servers_per_rack as f64
    }

    /// Per-server share of switch power.
    pub fn switch_power_share(&self) -> f64 {
        self.switch_power_w / self.servers_per_rack as f64
    }
}

impl Default for RackConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_matches_paper_constants() {
        let p = BurdenedParams::paper_default();
        assert!((p.multiplier() - 3.6636).abs() < 1e-5);
    }

    #[test]
    fn burdened_cost_srvr1_power() {
        // srvr1 draws 340 W + 1 W switch share; the paper reports $2,464
        // over three years.
        let p = BurdenedParams::paper_default();
        let cost = p.burdened_cost_usd(341.0);
        assert!((cost - 2464.0).abs() < 2.0, "cost {cost}");
    }

    #[test]
    fn burdened_cost_scales_linearly_with_power_and_tariff() {
        let p = BurdenedParams::paper_default();
        let c100 = p.burdened_cost_usd(100.0);
        assert!((p.burdened_cost_usd(200.0) - 2.0 * c100).abs() < 1e-9);
        let p170 = p.with_tariff(170.0);
        assert!((p170.burdened_cost_usd(100.0) - 1.7 * c100).abs() < 1e-9);
    }

    #[test]
    fn activity_factor_bounds() {
        let p = BurdenedParams::paper_default().with_activity_factor(1.0);
        assert!(
            p.burdened_cost_usd(100.0) > BurdenedParams::paper_default().burdened_cost_usd(100.0)
        );
    }

    #[test]
    #[should_panic(expected = "activity factor")]
    fn rejects_activity_factor_above_one() {
        BurdenedParams::paper_default().with_activity_factor(1.5);
    }

    #[test]
    fn cooling_scale_reduces_cost() {
        let base = BurdenedParams::paper_default();
        let improved = base.with_cooling_scale(0.5);
        assert!(improved.multiplier() < base.multiplier());
        // Halving cooling terms: 1 + 1.33 + 0.4 + 0.667*0.4 = 2.9968.
        assert!((improved.multiplier() - 2.9968).abs() < 1e-4);
    }

    #[test]
    fn rack_shares() {
        let r = RackConfig::paper_default();
        assert!((r.switch_cost_share() - 68.75).abs() < 1e-9);
        assert!((r.switch_power_share() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rack_rejects_zero_servers() {
        RackConfig::new(0, 100.0, 10.0);
    }
}
