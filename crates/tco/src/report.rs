//! Per-server TCO reports with component-level breakdowns (Figure 1).

use std::fmt;

use wcs_platforms::Component;

/// One component's contribution to a server's TCO.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComponentLine {
    /// Component category.
    pub component: Component,
    /// Hardware (infrastructure) cost in dollars.
    pub hw_usd: f64,
    /// Maximum operational power in watts.
    pub power_w: f64,
    /// Burdened power-and-cooling cost over the depreciation period.
    pub pc_usd: f64,
}

/// A full per-server TCO report: every component's hardware and burdened
/// power-and-cooling cost, as in Figure 1 of the paper.
///
/// # Example
/// ```
/// use wcs_platforms::{catalog, PlatformId};
/// use wcs_tco::TcoModel;
/// let r = TcoModel::paper_default().server_tco(&catalog::platform(PlatformId::Srvr2));
/// assert!((r.total_usd() - 3249.0).abs() < 2.0);
/// assert!(r.hw_fraction(wcs_platforms::Component::Cpu) > 0.15);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TcoReport {
    /// Name of the design this report describes.
    pub name: String,
    lines: Vec<ComponentLine>,
}

impl TcoReport {
    pub(crate) fn new(name: String, lines: Vec<ComponentLine>) -> Self {
        TcoReport { name, lines }
    }

    /// Component-level lines.
    pub fn lines(&self) -> &[ComponentLine] {
        &self.lines
    }

    /// Total infrastructure (hardware) cost, including the rack share.
    pub fn inf_usd(&self) -> f64 {
        self.lines.iter().map(|l| l.hw_usd).sum()
    }

    /// Total burdened power-and-cooling cost over the depreciation
    /// period.
    pub fn pc_usd(&self) -> f64 {
        self.lines.iter().map(|l| l.pc_usd).sum()
    }

    /// Total cost of ownership: infrastructure + burdened P&C.
    pub fn total_usd(&self) -> f64 {
        self.inf_usd() + self.pc_usd()
    }

    /// Total maximum operational power (watts), including rack share.
    pub fn power_w(&self) -> f64 {
        self.lines.iter().map(|l| l.power_w).sum()
    }

    /// One component's line, if present.
    pub fn line(&self, c: Component) -> Option<&ComponentLine> {
        self.lines.iter().find(|l| l.component == c)
    }

    /// Fraction of TCO contributed by a component's hardware cost.
    pub fn hw_fraction(&self, c: Component) -> f64 {
        self.line(c).map_or(0.0, |l| l.hw_usd / self.total_usd())
    }

    /// Fraction of TCO contributed by a component's P&C cost.
    pub fn pc_fraction(&self, c: Component) -> f64 {
        self.line(c).map_or(0.0, |l| l.pc_usd / self.total_usd())
    }
}

impl fmt::Display for TcoReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TCO report: {}", self.name)?;
        writeln!(
            f,
            "  {:<14} {:>10} {:>8} {:>10}",
            "component", "HW $", "W", "P&C $"
        )?;
        for l in &self.lines {
            writeln!(
                f,
                "  {:<14} {:>10.2} {:>8.1} {:>10.2}",
                l.component.to_string(),
                l.hw_usd,
                l.power_w,
                l.pc_usd
            )?;
        }
        write!(
            f,
            "  total: inf ${:.0} + P&C ${:.0} = ${:.0} ({:.0} W)",
            self.inf_usd(),
            self.pc_usd(),
            self.total_usd(),
            self.power_w()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TcoReport {
        TcoReport::new(
            "sample".into(),
            vec![
                ComponentLine {
                    component: Component::Cpu,
                    hw_usd: 100.0,
                    power_w: 50.0,
                    pc_usd: 200.0,
                },
                ComponentLine {
                    component: Component::Disk,
                    hw_usd: 50.0,
                    power_w: 10.0,
                    pc_usd: 40.0,
                },
            ],
        )
    }

    #[test]
    fn totals_sum_lines() {
        let r = sample();
        assert_eq!(r.inf_usd(), 150.0);
        assert_eq!(r.pc_usd(), 240.0);
        assert_eq!(r.total_usd(), 390.0);
        assert_eq!(r.power_w(), 60.0);
    }

    #[test]
    fn fractions() {
        let r = sample();
        assert!((r.hw_fraction(Component::Cpu) - 100.0 / 390.0).abs() < 1e-12);
        assert!((r.pc_fraction(Component::Disk) - 40.0 / 390.0).abs() < 1e-12);
        assert_eq!(r.hw_fraction(Component::Flash), 0.0);
    }

    #[test]
    fn display_contains_totals() {
        let s = sample().to_string();
        assert!(s.contains("390"));
        assert!(s.contains("CPU"));
    }
}
