//! The TCO model: BOM -> per-component hardware + burdened P&C costs.

use wcs_platforms::{BomItem, Component, Platform};

use crate::params::{BurdenedParams, RackConfig};
use crate::report::{ComponentLine, TcoReport};

/// Combines a rack configuration with burdened-power parameters and turns
/// bills of materials into [`TcoReport`]s.
///
/// # Example
/// ```
/// use wcs_tco::{TcoModel, BurdenedParams, RackConfig};
/// use wcs_platforms::{catalog, PlatformId};
///
/// let model = TcoModel::paper_default();
/// let r1 = model.server_tco(&catalog::platform(PlatformId::Srvr1));
/// let r2 = model.server_tco(&catalog::platform(PlatformId::Srvr2));
/// assert!(r1.total_usd() > r2.total_usd());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TcoModel {
    /// Rack-level aggregation parameters.
    pub rack: RackConfig,
    /// Burdened power-and-cooling parameters.
    pub burdened: BurdenedParams,
}

impl TcoModel {
    /// The paper's Section 2.2 default model.
    pub fn paper_default() -> Self {
        TcoModel {
            rack: RackConfig::paper_default(),
            burdened: BurdenedParams::paper_default(),
        }
    }

    /// Creates a model from explicit parameters.
    pub fn new(rack: RackConfig, burdened: BurdenedParams) -> Self {
        TcoModel { rack, burdened }
    }

    /// Full TCO report for a platform, including its per-server share of
    /// the rack switch.
    pub fn server_tco(&self, platform: &Platform) -> TcoReport {
        self.bom_tco(&platform.name, platform.bom())
    }

    /// Full TCO report for an arbitrary bill of materials (used for the
    /// unified N1/N2 designs). The rack-switch share is appended
    /// automatically; pass BOM lines without it.
    pub fn bom_tco(&self, name: &str, bom: &[BomItem]) -> TcoReport {
        let mut lines: Vec<ComponentLine> = bom
            .iter()
            .map(|item| ComponentLine {
                component: item.component,
                hw_usd: item.cost_usd,
                power_w: item.power_w,
                pc_usd: self.burdened.burdened_cost_usd(item.power_w),
            })
            .collect();
        let switch = BomItem::new(
            Component::RackSwitch,
            self.rack.switch_cost_share(),
            self.rack.switch_power_share(),
        );
        lines.push(ComponentLine {
            component: switch.component,
            hw_usd: switch.cost_usd,
            power_w: switch.power_w,
            pc_usd: self.burdened.burdened_cost_usd(switch.power_w),
        });
        TcoReport::new(name.to_owned(), lines)
    }

    /// Rack-level power draw (watts, after the activity factor) for
    /// `servers_per_rack` copies of the given platform plus the switch.
    pub fn rack_consumed_power_w(&self, platform: &Platform) -> f64 {
        let per_server = platform.max_power_w() * self.rack.servers_per_rack as f64;
        (per_server + self.rack.switch_power_w) * self.burdened.activity_factor
    }
}

impl Default for TcoModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_platforms::{catalog, PlatformId};

    /// Figure 1(a)'s bottom rows: 3-year P&C and total costs.
    #[test]
    fn figure1a_totals_reproduce() {
        let model = TcoModel::paper_default();

        let r1 = model.server_tco(&catalog::platform(PlatformId::Srvr1));
        assert!(
            (r1.pc_usd() - 2464.0).abs() < 2.0,
            "srvr1 P&C {}",
            r1.pc_usd()
        );
        assert!(
            (r1.total_usd() - 5758.0).abs() < 2.0,
            "srvr1 total {}",
            r1.total_usd()
        );

        let r2 = model.server_tco(&catalog::platform(PlatformId::Srvr2));
        assert!(
            (r2.pc_usd() - 1561.0).abs() < 2.0,
            "srvr2 P&C {}",
            r2.pc_usd()
        );
        assert!(
            (r2.total_usd() - 3249.0).abs() < 2.0,
            "srvr2 total {}",
            r2.total_usd()
        );
    }

    /// Figure 1(b): srvr2's TCO breakdown percentages.
    #[test]
    fn figure1b_breakdown_reproduces() {
        let model = TcoModel::paper_default();
        let r = model.server_tco(&catalog::platform(PlatformId::Srvr2));
        let cases = [
            // (component, paper HW %, paper P&C %)
            (Component::Cpu, 0.20, 0.22),
            (Component::Memory, 0.11, 0.06),
            (Component::Disk, 0.04, 0.02),
            (Component::BoardMgmt, 0.08, 0.09),
            (Component::PowerFans, 0.08, 0.08),
            (Component::RackSwitch, 0.02, 0.00),
        ];
        for (c, hw, pc) in cases {
            let got_hw = r.hw_fraction(c);
            let got_pc = r.pc_fraction(c);
            assert!((got_hw - hw).abs() < 0.02, "{c}: HW {got_hw:.3} vs {hw}");
            assert!((got_pc - pc).abs() < 0.02, "{c}: P&C {got_pc:.3} vs {pc}");
        }
    }

    /// The paper: "power and cooling costs are comparable to hardware
    /// costs".
    #[test]
    fn pc_comparable_to_hw() {
        let model = TcoModel::paper_default();
        for p in catalog::all() {
            let r = model.server_tco(&p);
            let ratio = r.pc_usd() / r.inf_usd();
            assert!(
                (0.3..3.0).contains(&ratio),
                "{}: P&C/HW ratio {ratio}",
                p.name
            );
        }
    }

    /// srvr1 consumes 13.6 kW/rack (paper Section 3.2); emb1 only 2.7 kW.
    #[test]
    fn rack_power_matches_section32() {
        let model = TcoModel::paper_default();
        let srvr1_kw = model.rack_consumed_power_w(&catalog::platform(PlatformId::Srvr1)) / 1e3;
        let emb1_kw = model.rack_consumed_power_w(&catalog::platform(PlatformId::Emb1)) / 1e3;
        assert!((srvr1_kw - 10.23).abs() < 0.1, "srvr1 rack {srvr1_kw} kW");
        assert!((emb1_kw - 1.59).abs() < 0.1, "emb1 rack {emb1_kw} kW");
        // The paper quotes nameplate rack power (13.6 kW / 2.7 kW, i.e.
        // activity factor 1.0):
        let nameplate1 = srvr1_kw / model.burdened.activity_factor;
        let nameplate_e = emb1_kw / model.burdened.activity_factor;
        assert!(
            (nameplate1 - 13.64).abs() < 0.1,
            "srvr1 nameplate {nameplate1}"
        );
        assert!(
            (nameplate_e - 2.12).abs() < 0.2,
            "emb1 nameplate {nameplate_e}"
        );
    }

    #[test]
    fn bom_tco_appends_switch() {
        let model = TcoModel::paper_default();
        let r = model.bom_tco("custom", &[BomItem::new(Component::Cpu, 100.0, 10.0)]);
        assert!(r.line(Component::RackSwitch).is_some());
        assert!((r.inf_usd() - 168.75).abs() < 1e-9);
    }

    #[test]
    fn cheaper_platforms_have_lower_tco() {
        let model = TcoModel::paper_default();
        let totals: Vec<f64> = [
            PlatformId::Srvr1,
            PlatformId::Srvr2,
            PlatformId::Desk,
            PlatformId::Emb1,
            PlatformId::Emb2,
        ]
        .iter()
        .map(|&id| model.server_tco(&catalog::platform(id)).total_usd())
        .collect();
        for w in totals.windows(2) {
            assert!(w[0] > w[1], "TCO should strictly decrease: {totals:?}");
        }
    }
}
