//! Real-estate costs — the lifecycle component the paper names but does
//! not model.
//!
//! Section 2.2 scopes total lifecycle cost to "base hardware, burdened
//! power and cooling, and real-estate", and Section 4 notes that an
//! ideal open model "would also include" real-estate explicitly. This
//! extension prices floor space per rack and amortizes it per server, so
//! the dense packaging designs (320 and 1250+ systems per rack) collect
//! the floor-space saving their compaction earns.
//!
//! It is deliberately *not* part of [`crate::TcoModel::paper_default`]:
//! Figure 1's published totals do not include a real-estate line, and we
//! reproduce those exactly. Add it explicitly where wanted.

use wcs_platforms::{BomItem, Component};

/// Floor-space pricing.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RealEstateParams {
    /// Datacenter floor cost, dollars per square meter per year
    /// (fit-out amortization + lease; 2008-era figures ran roughly
    /// $2,000-$4,000/m²/yr for Tier-III space).
    pub usd_per_m2_year: f64,
    /// Floor area per rack including aisle share, square meters.
    pub rack_pitch_m2: f64,
    /// Depreciation period in years (match the TCO model's).
    pub years: f64,
}

impl RealEstateParams {
    /// Default 2008-era Tier-III figures: $2,500/m²/yr, 2.5 m² per rack,
    /// 3 years.
    pub fn default_2008() -> Self {
        RealEstateParams {
            usd_per_m2_year: 2500.0,
            rack_pitch_m2: 2.5,
            years: 3.0,
        }
    }

    /// Creates parameters.
    ///
    /// # Panics
    /// Panics if any value is non-positive or non-finite.
    pub fn new(usd_per_m2_year: f64, rack_pitch_m2: f64, years: f64) -> Self {
        for v in [usd_per_m2_year, rack_pitch_m2, years] {
            assert!(
                v.is_finite() && v > 0.0,
                "real-estate parameters must be > 0"
            );
        }
        RealEstateParams {
            usd_per_m2_year,
            rack_pitch_m2,
            years,
        }
    }

    /// Per-rack cost over the depreciation period.
    pub fn per_rack_usd(&self) -> f64 {
        self.usd_per_m2_year * self.rack_pitch_m2 * self.years
    }

    /// Per-server share at the given packaging density.
    ///
    /// # Panics
    /// Panics if `servers_per_rack` is zero.
    pub fn per_server_usd(&self, servers_per_rack: u32) -> f64 {
        assert!(servers_per_rack > 0, "density must be positive");
        self.per_rack_usd() / servers_per_rack as f64
    }

    /// The per-server BOM line to append to a design's bill of
    /// materials (zero power — floors don't draw watts).
    pub fn bom_item(&self, servers_per_rack: u32) -> BomItem {
        BomItem::new(
            Component::RealEstate,
            self.per_server_usd(servers_per_rack),
            0.0,
        )
    }
}

impl Default for RealEstateParams {
    fn default() -> Self {
        Self::default_2008()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TcoModel;

    #[test]
    fn per_rack_math() {
        let re = RealEstateParams::default_2008();
        assert!((re.per_rack_usd() - 2500.0 * 2.5 * 3.0).abs() < 1e-9);
    }

    #[test]
    fn density_slashes_the_share() {
        let re = RealEstateParams::default_2008();
        let conv = re.per_server_usd(40);
        let dual = re.per_server_usd(320);
        let micro = re.per_server_usd(1280);
        assert!((conv / dual - 8.0).abs() < 1e-9);
        assert!(micro < 20.0, "microblade floor share ${micro}");
        assert!((conv - 468.75).abs() < 0.01);
    }

    #[test]
    fn integrates_as_bom_line() {
        let re = RealEstateParams::default_2008();
        let model = TcoModel::paper_default();
        let with = model.bom_tco(
            "with floor",
            &[BomItem::new(Component::Cpu, 100.0, 50.0), re.bom_item(40)],
        );
        let without = model.bom_tco("without", &[BomItem::new(Component::Cpu, 100.0, 50.0)]);
        let delta = with.total_usd() - without.total_usd();
        assert!((delta - re.per_server_usd(40)).abs() < 1e-9);
        // No power, hence no P&C change.
        assert!((with.pc_usd() - without.pc_usd()).abs() < 1e-9);
    }

    #[test]
    fn real_estate_favors_dense_designs_materially() {
        // At 1U density the floor share is a visible fraction of an
        // emb1-class server's cost; at microblade density it vanishes.
        let re = RealEstateParams::default_2008();
        assert!(re.per_server_usd(40) > 400.0);
        assert!(re.per_server_usd(1280) < 15.0);
    }

    #[test]
    #[should_panic(expected = "must be > 0")]
    fn rejects_zero_price() {
        RealEstateParams::new(0.0, 2.5, 3.0);
    }
}
