//! Scenario-pack study: registered workloads (the paper suite joined by
//! the FaaS and DAG-analytics families) under traffic packs, on the
//! srvr1 baseline and the unified N2 design.
//!
//! The default slate runs FaaS steady and under a flash crowd, DAG
//! analytics steady and under a diurnal cycle, and websearch under a
//! flash crowd; `--scenario NAME` and `--traffic PACK` narrow it (an
//! unknown name exits 2 listing every registered scenario). After the
//! report the binary re-evaluates the whole slate under 1 and 2 worker
//! threads with memoization off and requires byte-identical renders —
//! a divergence aborts the run (and CI) before results are written.
//! Writes `SCENARIOS_results.json` to the current directory.
//!
//! Run with `cargo run --release -p wcs-bench --bin scenarios
//! [--scenario NAME] [--traffic PACK]`.

use std::fmt::Write as _;

use wcs_bench::cli::{self, run_or_exit};
use wcs_core::{DesignPoint, Evaluator, FamilyEval, ScenarioEval};
use wcs_simcore::ThreadPool;
use wcs_workloads::{ScenarioSpec, TrafficPack};

/// The default slate: both new families, steady and under a pack, plus
/// one paper workload under the flash crowd.
fn default_slate() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::steady("faas"),
        ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd()),
        ScenarioSpec::steady("dag-analytics"),
        ScenarioSpec::steady("dag-analytics").with_traffic(TrafficPack::diurnal()),
        ScenarioSpec::steady("websearch").with_traffic(TrafficPack::flash_crowd()),
    ]
}

/// Evaluates the whole slate on every design, in slate-then-design order.
fn run_slate(
    eval: &Evaluator,
    designs: &[DesignPoint],
    specs: &[ScenarioSpec],
) -> Vec<ScenarioEval> {
    let mut all = Vec::with_capacity(designs.len() * specs.len());
    for design in designs {
        all.extend(run_or_exit(
            "scenario evaluation",
            eval.evaluate_scenarios(design, specs),
        ));
    }
    all
}

/// FNV-1a over a render, for the compact checksum in the JSON.
fn fnv64(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325_u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

fn family_note(family: &FamilyEval) -> String {
    match family {
        FamilyEval::Paper { workload } => format!("paper:{workload}"),
        FamilyEval::Faas {
            pool_gib,
            warm_fraction,
            cpu_inflation,
            ..
        } => format!(
            "pool {pool_gib:.1} GiB, warm {:.0}%, cpu x{cpu_inflation:.2}",
            warm_fraction * 100.0
        ),
        FamilyEval::Dag {
            tasks,
            stragglers,
            makespan_secs,
            ..
        } => format!("{tasks} tasks ({stragglers} stragglers), makespan {makespan_secs:.1} s"),
    }
}

fn main() {
    let args = cli::parse();
    let specs = args.scenario_specs(&default_slate());
    let designs = [DesignPoint::baseline_srvr1(), DesignPoint::n2()];
    let eval = args.build_evaluator(|b| b.quick());

    let all = run_slate(&eval, &designs, &specs);

    println!("Scenario packs on srvr1 baseline vs unified N2 (quick profile):");
    println!(
        "  {:<28} {:<14} {:>12} {:<5} {:>8} {:>8} {:>7}  detail",
        "scenario", "design", "value", "unit", "p95(s)", "QoS att", "avail"
    );
    for ev in &all {
        let (p95, att) = match &ev.traffic {
            Some(t) => (
                format!("{:.3}", t.p95_latency_secs),
                t.qos_attainment
                    .map_or_else(|| "-".to_owned(), |q| format!("{:.3}", q)),
            ),
            None => ("-".to_owned(), "-".to_owned()),
        };
        // Fleet availability is the evaluator's fault burden; a
        // resilient run reports its own measured availability instead.
        let avail = match (&ev.resilience, &ev.availability) {
            (Some(r), _) => format!("{:.4}", r.availability),
            (None, Some(a)) => format!("{:.4}", a.availability),
            (None, None) => "-".to_owned(),
        };
        println!(
            "  {:<28} {:<14} {:>12.2} {:<5} {:>8} {:>8} {:>7}  {}",
            ev.scenario,
            ev.design,
            ev.value,
            ev.unit,
            p95,
            att,
            avail,
            family_note(&ev.family)
        );
        if let Some(r) = &ev.resilience {
            println!(
                "  {:>43} shed {:.1}%, goodput {:.1} rps, SLO att {:.3}, \
                 p99/SLO {:.2}, retries {}+{} denied, breaker {} trips ({:.1}% open), \
                 chaos {} outages ({:.1}% down)",
                "resilience:",
                r.shed_fraction * 100.0,
                r.goodput_rps,
                r.slo_attainment,
                r.p99_over_slo,
                r.retries_spent,
                r.retries_denied,
                r.breaker_trips,
                r.breaker_open_fraction * 100.0,
                r.chaos_outages,
                r.chaos_down_fraction * 100.0,
            );
        }
    }

    // Determinism gate: the full slate again under 1 and 2 worker
    // threads with memoization off must render byte-identically to the
    // run above. Any divergence aborts before results are written.
    let reference = format!("{all:?}");
    let mut gate_configs = 1usize;
    for threads in [1usize, 2] {
        let pool = run_or_exit("size gate pool", ThreadPool::new(threads));
        let mut b = Evaluator::builder().quick().pool(pool).memo(false);
        if let Some(seed) = args.seed {
            b = b.seed(seed);
        }
        if let Some(rs) = args.resilience {
            b = b.resilience(rs);
        }
        let gate_eval = run_or_exit("construct gate evaluator", b.build());
        let rerun = format!("{:?}", run_slate(&gate_eval, &designs, &specs));
        assert_eq!(
            reference, rerun,
            "scenario evaluation diverged at {threads} thread(s), memo off"
        );
        gate_configs += 1;
    }
    let render_fnv = fnv64(&reference);
    println!(
        "  determinism: {gate_configs} engine configs byte-identical (fnv64 {render_fnv:#018x})"
    );

    let mut json = String::from("{\n  \"scenarios\": [\n");
    for (i, ev) in all.iter().enumerate() {
        let comma = if i + 1 < all.len() { "," } else { "" };
        let traffic = match &ev.traffic {
            Some(t) => format!(
                "{{\"pack\": \"{}\", \"offered_peak_rps\": {:.4}, \
                 \"throughput_rps\": {:.4}, \"p95_latency_secs\": {:.6}, \
                 \"qos_attainment\": {}, \"qos_violations\": {}}}",
                t.pack,
                t.offered_peak_rps,
                t.throughput_rps,
                t.p95_latency_secs,
                t.qos_attainment
                    .map_or_else(|| "null".to_owned(), |q| format!("{q:.6}")),
                t.qos_violations()
            ),
            None => "null".to_owned(),
        };
        let availability = match (&ev.resilience, &ev.availability) {
            (Some(r), _) => format!("{:.6}", r.availability),
            (None, Some(a)) => format!("{:.6}", a.availability),
            (None, None) => "null".to_owned(),
        };
        let resilience = match &ev.resilience {
            Some(r) => format!(
                "{{\"shed_fraction\": {:.6}, \"goodput_rps\": {:.4}, \
                 \"availability\": {:.6}, \"slo_secs\": {:.6}, \
                 \"slo_attainment\": {:.6}, \"p99_over_slo\": {:.4}, \
                 \"retries_spent\": {}, \"retries_denied\": {}, \
                 \"retry_amplification\": {:.4}, \"breaker_trips\": {}, \
                 \"breaker_open_fraction\": {:.6}, \"chaos_outages\": {}, \
                 \"chaos_down_fraction\": {:.6}}}",
                r.shed_fraction,
                r.goodput_rps,
                r.availability,
                r.slo_secs,
                r.slo_attainment,
                r.p99_over_slo,
                r.retries_spent,
                r.retries_denied,
                r.retry_amplification,
                r.breaker_trips,
                r.breaker_open_fraction,
                r.chaos_outages,
                r.chaos_down_fraction
            ),
            None => "null".to_owned(),
        };
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"design\": \"{}\", \"value\": {:.6}, \
             \"unit\": \"{}\", \"availability\": {availability}, \
             \"traffic\": {traffic}, \"resilience\": {resilience}}}{comma}",
            ev.scenario, ev.design, ev.value, ev.unit
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"determinism\": {{\"configs\": {gate_configs}, \
         \"render_fnv64\": \"{render_fnv:#018x}\", \"diverged\": false}}"
    );
    json.push_str("}\n");
    run_or_exit(
        "write SCENARIOS_results.json",
        std::fs::write("SCENARIOS_results.json", &json),
    );
    println!("wrote SCENARIOS_results.json");

    eval.export_obs();
    args.write_metrics();
}
