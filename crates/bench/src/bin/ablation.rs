//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * activity factor 0.5-1.0 (the paper: "qualitatively similar"),
//! * electricity tariff $50-$170/MWh (the paper's quoted range),
//! * replacement policy and local-memory fraction for the memory blade,
//! * flash-cache capacity sweep,
//! * N2 with and without each of its three techniques.
//!
//! Run with `cargo run --release -p wcs-bench --bin ablation`.

use wcs_bench::cli::{run_or_exit, BenchArgs};
use wcs_core::designs::{CoolingConfig, DesignPoint};
use wcs_flashcache::memo::StorageMemo;
use wcs_memshare::policy::PolicyKind;
use wcs_memshare::slowdown::{estimate_slowdown_with, ReplayMemo, SlowdownConfig};
use wcs_platforms::future::TechTrend;
use wcs_platforms::storage::{DiskModel, FlashModel};
use wcs_platforms::{catalog, PlatformId};
use wcs_tco::sensitivity::component_leverage;
use wcs_tco::{BurdenedParams, Efficiency, TcoModel};
use wcs_workloads::disktrace::params_for;
use wcs_workloads::WorkloadId;

fn main() {
    let args = wcs_bench::cli::parse();
    activity_factor_sweep();
    tariff_sweep();
    component_leverage_ranking();
    local_fraction_sweep(&args);
    flash_capacity_sweep(&args);
    n2_technique_ablation(&args);
    future_projection(&args);
    args.write_metrics();
}

/// Does emb1's advantage persist as technology scales? (Section 3.4:
/// "we expect these trends to hold into the future as well".)
fn future_projection(args: &BenchArgs) {
    println!("\nAblation: technology projection (emb1-class platform vs srvr1, Perf/TCO-$)");
    let eval = args.build_evaluator(|b| b.quick());
    let base = run_or_exit(
        "srvr1 baseline",
        eval.evaluate(&DesignPoint::baseline_srvr1()),
    );
    for years in [0.0, 2.0, 4.0] {
        let platform =
            TechTrend::vintage_2008().project_platform(&catalog::platform(PlatformId::Emb1), years);
        let mut design = DesignPoint::baseline(PlatformId::Emb1);
        design.platform = platform;
        design.name = format!("emb1+{years:.0}yr");
        match eval.evaluate(&design) {
            Ok(e) => println!(
                "  +{years:.0} years: HMean Perf/TCO-$ {:>4.0}% (HW ${:.0})",
                e.compare(&base).hmean(|r| r.perf_per_tco) * 100.0,
                e.report.inf_usd()
            ),
            Err(err) => println!("  +{years:.0} years: {err}"),
        }
    }
    println!("  (srvr1 held fixed; in reality it scales too — the point is that the");
    println!("   embedded platform's lead widens as memory cost, its dominant BOM line,");
    println!("   commoditizes fastest.)");
    eval.export_obs();
}

/// Which component should a designer attack next? (Figure 1(b)'s
/// holistic-design argument, quantified.)
fn component_leverage_ranking() {
    println!("\nAblation: component leverage on srvr2 TCO (10% improvement each)");
    let model = TcoModel::paper_default();
    let lv = component_leverage(&model, &catalog::platform(PlatformId::Srvr2), 0.10);
    for l in lv {
        println!(
            "  {:<14} cost {:>5.2}%  power {:>5.2}%  total {:>5.2}%",
            l.component.to_string(),
            l.cost_leverage * 100.0,
            l.power_leverage * 100.0,
            l.total() * 100.0
        );
    }
}

/// Does the emb1-vs-srvr1 TCO advantage survive the activity-factor
/// range? (Section 2.2: "we also studied a range of activity factors
/// from 0.5 to 1.0 and our results are qualitatively similar".)
fn activity_factor_sweep() {
    println!("Ablation: activity factor (emb1 Perf/TCO-$ vs srvr1 at fixed rel perf 27%)");
    for af in [0.5, 0.625, 0.75, 0.875, 1.0] {
        let burdened = BurdenedParams::paper_default().with_activity_factor(af);
        let model = TcoModel::new(Default::default(), burdened);
        let base = Efficiency::new(1.0, model.server_tco(&catalog::platform(PlatformId::Srvr1)));
        let emb1 = Efficiency::new(0.27, model.server_tco(&catalog::platform(PlatformId::Emb1)));
        println!(
            "  AF {af:>5}: Perf/TCO-$ {:>4.0}%",
            emb1.relative_to(&base).perf_per_tco * 100.0
        );
    }
}

/// The paper quotes a $50-$170/MWh tariff range around its $100 default.
fn tariff_sweep() {
    println!("\nAblation: electricity tariff (srvr1 3-yr P&C and total)");
    for tariff in [50.0, 100.0, 170.0] {
        let burdened = BurdenedParams::paper_default().with_tariff(tariff);
        let model = TcoModel::new(Default::default(), burdened);
        let r = model.server_tco(&catalog::platform(PlatformId::Srvr1));
        println!(
            "  ${tariff:>3}/MWh: P&C ${:>5.0}, total ${:>5.0} ({:.0}% of TCO is P&C)",
            r.pc_usd(),
            r.total_usd(),
            r.pc_usd() / r.total_usd() * 100.0
        );
    }
}

/// Local-memory fraction and policy sweep for the memory blade.
fn local_fraction_sweep(args: &BenchArgs) {
    println!("\nAblation: memory-blade local fraction x policy (websearch slowdown %)");
    // Every cell replays the same websearch trace: the memo materializes
    // it once and shares the buffer across all fraction x policy points.
    let replays = ReplayMemo::with_enabled(args.memo).with_obs(args.obs.clone());
    print!("  {:<8}", "local");
    for p in [PolicyKind::Lru, PolicyKind::Clock, PolicyKind::Random] {
        print!("{:>8}", format!("{p:?}"));
    }
    println!();
    for frac in [0.5, 0.25, 0.125, 0.0625] {
        print!("  {:<8}", format!("{:.1}%", frac * 100.0));
        for policy in [PolicyKind::Lru, PolicyKind::Clock, PolicyKind::Random] {
            let r = estimate_slowdown_with(
                WorkloadId::Websearch,
                &SlowdownConfig {
                    local_fraction: frac,
                    policy,
                    ..SlowdownConfig::paper_default()
                },
                &replays,
            )
            .expect("valid slowdown config");
            print!("{:>7.2}%", r.slowdown * 100.0);
        }
        println!();
    }
}

/// Flash-cache capacity sweep: mean service time for the ytube stream on
/// the remote laptop disk.
fn flash_capacity_sweep(args: &BenchArgs) {
    println!("\nAblation: flash capacity (ytube on remote laptop disk)");
    // One ytube trace replayed against six storage configurations: the
    // memo materializes the trace once and shares it across the sweep.
    let storage = StorageMemo::with_enabled(args.memo).with_obs(args.obs.clone());
    let params = params_for(WorkloadId::Ytube);
    let bare = storage
        .replay(&DiskModel::laptop_remote(), None, params, 1, 80_000)
        .mean_service_secs();
    println!("  no flash: {:.2} ms/IO", bare * 1e3);
    for gb in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let stats = storage.replay(
            &DiskModel::laptop_remote(),
            Some(&FlashModel::scaled(gb)),
            params,
            1,
            80_000,
        );
        println!(
            "  {gb:>4} GB: {:.2} ms/IO (hit ratio {:.0}%, ${:.0})",
            stats.mean_service_secs() * 1e3,
            stats.hit_ratio() * 100.0,
            FlashModel::scaled(gb).price_usd
        );
    }
}

/// N2 with each technique removed: which contributes what?
fn n2_technique_ablation(args: &BenchArgs) {
    println!("\nAblation: N2 technique contributions (HMean Perf/TCO-$ vs srvr1)");
    let eval = args.build_evaluator(|b| b.quick());
    let base = run_or_exit(
        "srvr1 baseline",
        eval.evaluate(&DesignPoint::baseline_srvr1()),
    );

    let mut variants: Vec<(&str, DesignPoint)> = Vec::new();
    variants.push(("N2 (full)", DesignPoint::n2()));
    let mut no_mem = DesignPoint::n2();
    no_mem.memshare = None;
    no_mem.name = "N2 - memshare".into();
    variants.push(("N2 without memory blade", no_mem));
    let mut no_storage = DesignPoint::n2();
    no_storage.storage = None;
    no_storage.name = "N2 - storage".into();
    variants.push(("N2 without flash/laptop disks", no_storage));
    let mut no_cooling = DesignPoint::n2();
    no_cooling.cooling = CoolingConfig::conventional();
    no_cooling.name = "N2 - cooling".into();
    variants.push(("N2 without new packaging", no_cooling));
    variants.push(("emb1 alone", DesignPoint::baseline(PlatformId::Emb1)));

    for (label, design) in variants {
        match eval.evaluate(&design) {
            Ok(e) => {
                let cmp = e.compare(&base);
                println!(
                    "  {:<32} {:>5.0}%",
                    label,
                    cmp.hmean(|r| r.perf_per_tco) * 100.0
                );
            }
            Err(err) => println!("  {label:<32} infeasible: {err}"),
        }
    }
    eval.export_obs();
}
