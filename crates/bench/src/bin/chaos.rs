//! Chaos harness: crash-safety proof for the sweep journal, panic
//! isolation, and watchdog deadlines.
//!
//! Three waves, all fault-plan driven (seeded from `--seed`, default 42):
//!
//! 1. **Kill + resume** — a clean reference run renders the full design
//!    family to one canonical string; then, for kill points at 25% and
//!    60% of the cell family, a journaled run evaluates only that prefix
//!    (simulating a crash mid-sweep), the journal tail is deliberately
//!    damaged (torn append at the first kill point, a flipped bit at the
//!    second), and a fresh `--resume`-style evaluator replays the valid
//!    prefix and completes the run. The resumed render must be
//!    byte-identical to the clean one at every thread count in {1, 2, 8}
//!    and with memoization on and off.
//! 2. **Panic isolation** — a parallel map in which plan-chosen cells
//!    panic (some persistently, some only on their first attempt) must
//!    complete every other cell, retry the transient ones to success,
//!    and report the persistent ones as per-cell errors — never abort.
//! 3. **Deadline degradation** — a cell that never finishes on its own
//!    must be cancelled cooperatively by the watchdog and reported as
//!    degraded while its neighbours complete.
//! 4. **Service chaos** — the multi-process sweep service runs its plan
//!    across 4 worker processes while the supervisor SIGKILLs a live
//!    worker at 25% and 60% completion; the merged canonical journal and
//!    the rendered results must be byte-identical to an uninterrupted
//!    single-process `--threads 1` run of the same plan and seed.
//!
//! `--traffic PACK` adds a traffic leg to the compared render: faas and
//! websearch on N2 under the pack (with admission control, retry
//! budgets, breakers, and the co-varying chaos wave when `--resilience`
//! is armed), so kill/resume byte-identity is asserted under varied
//! traffic too.
//!
//! Writes `BENCH_results.json` with `"resume_diverged": false`,
//! `"merge_diverged": false`, and a `"resilience"` block whose
//! `"within_budget": true` certifies the retry spend stayed under every
//! run's accrual ceiling (CI greps for exactly those) plus the recovery
//! counters. Run with `cargo run --release -p wcs-bench --bin chaos
//! [--threads N] [--no-memo] [--traffic PACK] [--resilience]`.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use wcs_bench::cli;
use wcs_bench::service::{run_serial_reference, run_supervisor, ServiceOptions};
use wcs_core::evaluate::CellOutcome;
use wcs_core::{DesignPoint, Evaluator, ScenarioEval};
use wcs_platforms::PlatformId;
use wcs_simcore::faults::FaultProcess;
use wcs_simcore::watchdog::Watchdog;
use wcs_simcore::{SimDuration, SimRng, ThreadPool};
use wcs_workloads::{ScenarioSpec, TrafficPack};

/// The cell family every wave runs over: all six baseline platforms plus
/// the paper's unified designs and two N2 variants.
fn cell_family() -> Vec<DesignPoint> {
    let mut designs: Vec<DesignPoint> = PlatformId::ALL
        .iter()
        .map(|&id| DesignPoint::baseline(id))
        .collect();
    designs.push(DesignPoint::n1());
    designs.push(DesignPoint::n2());
    let mut no_share = DesignPoint::n2();
    no_share.memshare = None;
    no_share.name = "N2-noshare".into();
    designs.push(no_share);
    let mut no_flash = DesignPoint::n2();
    no_flash.storage = None;
    no_flash.name = "N2-noflash".into();
    designs.push(no_flash);
    designs
}

/// One canonical, byte-comparable render of the whole family.
fn render(evals: &[wcs_core::DesignEval]) -> String {
    let mut out = String::new();
    for e in evals {
        let _ = writeln!(out, "{e:?}");
    }
    out
}

/// The traffic leg `--traffic` arms: faas and websearch on N2 under the
/// selected pack (and the resilience layer, when `--resilience` is on).
/// Empty without the flag, so the default run is byte-identical to the
/// pre-traffic binary.
fn traffic_specs(args: &cli::BenchArgs) -> Vec<ScenarioSpec> {
    match args.traffic {
        Some(pack) if pack != TrafficPack::Steady => vec![
            ScenarioSpec::steady("faas").with_traffic(pack),
            ScenarioSpec::steady("websearch").with_traffic(pack),
        ],
        _ => Vec::new(),
    }
}

/// Renders the design family plus the traffic leg into one canonical
/// string — kill/resume byte-identity is asserted over both, so chaos
/// waves hold under varied traffic too.
fn render_with_traffic(
    eval: &Evaluator,
    designs: &[DesignPoint],
    specs: &[ScenarioSpec],
) -> (String, Vec<ScenarioEval>) {
    let mut out = render(&eval.evaluate_many(designs).expect("family evaluates"));
    let mut scenarios = Vec::new();
    if !specs.is_empty() {
        let evals = eval
            .evaluate_scenarios(&DesignPoint::n2(), specs)
            .expect("traffic leg evaluates");
        for e in &evals {
            let _ = writeln!(out, "{e:?}");
        }
        scenarios = evals;
    }
    (out, scenarios)
}

/// A unique journal path under the system temp directory.
fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wcs-chaos-{}-{tag}.journal", std::process::id()))
}

/// Damage the journal tail: a torn half-frame for `kill == 0`, a flipped
/// bit inside the last written byte for `kill == 1`. Both must be caught
/// by the reader (CRC / framing) and truncated away on resume.
fn damage_tail(path: &Path, kill: usize) {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .expect("journal exists after the partial run");
    let len = file.metadata().expect("journal metadata").len();
    if kill == 0 {
        file.seek(SeekFrom::End(0)).expect("seek to end");
        // A torn append: the length prefix of a frame that never finished.
        file.write_all(&[0xAB; 13]).expect("append torn tail");
    } else if len > 0 {
        let mut byte = [0u8; 1];
        file.seek(SeekFrom::Start(len - 1))
            .expect("seek to last byte");
        file.read_exact(&mut byte).expect("read last byte");
        byte[0] ^= 0x01;
        file.seek(SeekFrom::Start(len - 1)).expect("seek back");
        file.write_all(&byte).expect("flip bit in last frame");
    }
}

struct ResumeOutcome {
    configs: u64,
    replayed: u64,
    resume_hits: u64,
    journaled: u64,
}

/// Wave 1: kill at 25% and 60%, damage the tail, resume, compare.
fn resume_wave(
    args: &cli::BenchArgs,
    designs: &[DesignPoint],
    specs: &[ScenarioSpec],
    clean: &str,
) -> ResumeOutcome {
    let mut out = ResumeOutcome {
        configs: 0,
        replayed: 0,
        resume_hits: 0,
        journaled: 0,
    };
    let memo_settings: &[bool] = if args.memo { &[true, false] } else { &[false] };
    for &threads in &[1usize, 2, 8] {
        let pool = ThreadPool::new(threads).expect("positive thread count");
        for &memo in memo_settings {
            for (kill, frac) in [(0usize, 0.25f64), (1, 0.60)] {
                let path = journal_path(&format!("t{threads}-m{}-k{kill}", u8::from(memo)));
                let _ = std::fs::remove_file(&path);
                let build =
                    |b: wcs_core::EvalBuilder| b.pool(pool).memo(memo).quick().resume(&path);

                // The "crashed" run: evaluate only the prefix, then die.
                let k = ((designs.len() as f64) * frac).ceil() as usize;
                let partial = args.build_evaluator(build);
                partial
                    .evaluate_many(&designs[..k])
                    .expect("prefix evaluates");
                out.journaled += partial.memo.cells_journaled();
                assert!(
                    partial.memo.cells_journaled() > 0,
                    "partial run journaled nothing"
                );
                drop(partial);
                damage_tail(&path, kill);

                // The resumed run: replay the valid prefix, finish the
                // rest (traffic leg included, recomputed purely).
                let resumed = args.build_evaluator(build);
                let (rendered, _) = render_with_traffic(&resumed, designs, specs);
                assert_eq!(
                    clean, rendered,
                    "resumed output diverged (threads {threads}, memo {memo}, kill {kill})"
                );
                assert!(
                    resumed.memo.cells_replayed() > 0,
                    "resume replayed nothing from the journal"
                );
                assert!(
                    resumed.memo.resume_hits() > 0,
                    "resume lane never hit during the resumed run"
                );
                out.replayed += resumed.memo.cells_replayed();
                out.resume_hits += resumed.memo.resume_hits();
                out.configs += 1;
                let _ = std::fs::remove_file(&path);
            }
        }
    }
    out
}

struct PanicOutcome {
    cells: usize,
    persistent: usize,
    transient: usize,
    panics_caught: u64,
    retries: u64,
}

/// Wave 2: plan-chosen cells panic; the sweep must finish anyway.
fn panic_wave(args: &cli::BenchArgs, seed: u64) -> PanicOutcome {
    const CELLS: usize = 24;
    // The outage plan doubles as the panic plan: each down-window marks
    // one cell as faulty, alternating persistent / first-attempt-only.
    let flap = FaultProcess::exponential(
        SimDuration::from_secs_f64(400.0),
        SimDuration::from_secs_f64(10.0),
    )
    .expect("positive rates");
    let mut rng = SimRng::seed_from(seed);
    let windows = flap.windows(SimDuration::from_secs_f64(2_000.0), &mut rng);
    let mut persistent = [false; CELLS];
    let mut transient = [false; CELLS];
    for (i, w) in windows.iter().enumerate() {
        let cell = (w.down_at.as_nanos() as usize) % CELLS;
        if i % 2 == 0 {
            persistent[cell] = true;
            transient[cell] = false;
        } else if !persistent[cell] {
            transient[cell] = true;
        }
    }
    if !persistent.iter().any(|&p| p) {
        persistent[3] = true; // the plan must draw blood
    }
    if !transient.iter().any(|&t| t) {
        transient[7] = true;
    }

    // Injected panics are expected here — keep their backtraces out of
    // the harness output while leaving real panics loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("chaos:"));
        if !injected {
            default_hook(info);
        }
    }));

    use std::sync::atomic::{AtomicU32, Ordering};
    let first_attempts: Vec<AtomicU32> = (0..CELLS).map(|_| AtomicU32::new(0)).collect();
    let items: Vec<usize> = (0..CELLS).collect();
    let (results, recovery) = args.pool.par_map_isolated(&items, |i, &cell| {
        if persistent[cell] {
            panic!("chaos: persistent fault in cell {cell}");
        }
        if transient[cell] && first_attempts[cell].fetch_add(1, Ordering::Relaxed) == 0 {
            panic!("chaos: transient fault in cell {cell}");
        }
        // Each healthy cell does real, seed-derived work.
        let mut r = SimRng::stream(seed, i as u64);
        (0..512).map(|_| r.next_u64() & 1).sum::<u64>()
    });

    println!("\nchaos wave 2: panic isolation ({CELLS} cells)");
    let mut ok = 0usize;
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(_) => ok += 1,
            Err(e) => println!("  cell {i:>2}: DEGRADED — {e}"),
        }
    }
    let expected_failures = persistent.iter().filter(|&&p| p).count();
    assert_eq!(
        ok,
        CELLS - expected_failures,
        "healthy and retried cells must all complete"
    );
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.is_err(), persistent[i], "cell {i} outcome mismatch");
    }
    assert!(recovery.panics_caught >= expected_failures as u64);
    assert!(
        recovery.retries >= 1,
        "at least one transient cell must have been retried"
    );
    let _ = std::panic::take_hook(); // restore default panic reporting
    println!(
        "  {ok}/{CELLS} cells ok, {} persistent faults isolated, {} panics caught, {} retries",
        expected_failures, recovery.panics_caught, recovery.retries
    );
    PanicOutcome {
        cells: CELLS,
        persistent: expected_failures,
        transient: transient.iter().filter(|&&t| t).count(),
        panics_caught: recovery.panics_caught,
        retries: recovery.retries,
    }
}

/// Wave 3: a never-finishing cell is cancelled by deadline; its
/// neighbours complete untouched.
fn deadline_wave(args: &cli::BenchArgs) -> u64 {
    let wd = Watchdog::new(Duration::from_millis(20));
    let items: Vec<usize> = (0..4).collect();
    let (results, _) = args
        .pool
        .par_map_watched(&items, Some(&wd), |_, &cell, token| {
            if cell == 0 {
                // Runs "forever" — only the watchdog can stop it.
                let started = Instant::now();
                while !token.is_cancelled() {
                    assert!(
                        started.elapsed() < Duration::from_secs(30),
                        "watchdog never fired"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                return Err("degraded: deadline exceeded");
            }
            Ok(cell * 10)
        });
    println!("\nchaos wave 3: watchdog deadlines (4 cells, 20ms budget)");
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(Ok(v)) => println!("  cell {i}: ok ({v})"),
            Ok(Err(msg)) => println!("  cell {i}: DEGRADED — {msg}"),
            Err(e) => println!("  cell {i}: DEGRADED — {e}"),
        }
    }
    assert!(matches!(results[0], Ok(Err(_))), "cell 0 must be degraded");
    for r in &results[1..] {
        assert!(matches!(r, Ok(Ok(_))), "healthy cells must complete");
    }
    let cancels = wd.deadline_cancels();
    assert!(cancels >= 1, "the watchdog must have cancelled cell 0");
    println!("  {cancels} deadline cancel(s) recorded");
    cancels
}

struct ServiceOutcome {
    cells: usize,
    spawns: u64,
    kills: u64,
    stolen: u64,
    retries: u64,
    merge_conflicts: u64,
}

/// Wave 4: the multi-process service under SIGKILLs at fixed plan
/// fractions must still produce a canonical journal byte-identical to
/// the single-process reference.
fn service_wave(seed: u64) -> ServiceOutcome {
    let dir = std::env::temp_dir().join(format!("wcs-chaos-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut opts = ServiceOptions::new(4);
    opts.seed = seed;
    opts.out = dir.join("canonical.journal");
    opts.dir = dir.clone();
    opts.kill_at = vec![0.25, 0.60];
    let report = run_supervisor(&opts).expect("service completes under chaos kills");

    let reference_journal = dir.join("reference.journal");
    let reference_render = run_serial_reference(opts.plan_cells, seed, &reference_journal)
        .expect("serial reference evaluates");
    let canonical = std::fs::read(&report.canonical_journal).expect("canonical journal readable");
    let reference = std::fs::read(&reference_journal).expect("reference journal readable");
    assert_eq!(
        report.render, reference_render,
        "service render diverged from the single-process reference"
    );
    assert_eq!(
        canonical, reference,
        "merged canonical journal is not byte-identical to the single-process journal"
    );

    use std::sync::atomic::Ordering;
    let p = &report.progress;
    let out = ServiceOutcome {
        cells: report.cells,
        spawns: p.worker_spawns.load(Ordering::Relaxed),
        kills: p.worker_kills_observed.load(Ordering::Relaxed),
        stolen: p.worker_cells_stolen.load(Ordering::Relaxed),
        retries: p.worker_retries.load(Ordering::Relaxed),
        merge_conflicts: p.worker_merge_conflicts.load(Ordering::Relaxed),
    };
    assert!(
        out.kills >= 2,
        "both chaos kill points must have claimed a worker (got {})",
        out.kills
    );
    assert!(
        out.stolen >= 1,
        "kills must have orphaned at least one cell"
    );
    assert_eq!(out.merge_conflicts, 0, "pure cells can never conflict");
    println!("\nchaos wave 4: service chaos (4 workers, kills at 25%/60%)");
    println!(
        "  {} cells byte-identical after {} kills; {} spawns, {} cells stolen, {} retries",
        out.cells, out.kills, out.spawns, out.stolen, out.retries
    );
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn main() {
    wcs_bench::service::maybe_run_worker();
    let args = cli::parse();
    let seed = args.seed.unwrap_or(42);
    let designs = cell_family();

    let specs = traffic_specs(&args);

    // Clean reference run: serial, memoized-or-not per flags.
    println!(
        "chaos: {} cells{}, seed {seed}, reference render...",
        designs.len(),
        match args.traffic {
            Some(pack) if !specs.is_empty() => format!(" + {} traffic leg", pack.label()),
            _ => String::new(),
        }
    );
    let clean_eval: Evaluator = args.build_evaluator(|b| b.quick());
    let (clean, clean_scenarios) = render_with_traffic(&clean_eval, &designs, &specs);

    // The reference run also exercises the per-cell report path.
    let outcomes: Vec<CellOutcome> = clean_eval.evaluate_cells(&designs);
    assert!(outcomes.iter().all(CellOutcome::is_ok));

    println!("chaos wave 1: kill at 25%/60%, damage tail, resume (threads 1/2/8)");
    let resume = resume_wave(&args, &designs, &specs, &clean);
    println!(
        "  {} kill/resume configurations byte-identical ({} cells replayed, {} resume hits)",
        resume.configs, resume.replayed, resume.resume_hits
    );

    let panics = panic_wave(&args, seed);
    let deadline_cancels = deadline_wave(&args);
    let service = service_wave(seed);

    // The traffic leg's resilience accounting: total retry spend must
    // stay under every run's accrual ceiling (CI greps the verdict).
    let ratio = args.resilience.and_then(|rs| rs.retry_ratio).unwrap_or(0.0);
    let (mut res_runs, mut res_requests, mut res_spent, mut res_denied, mut res_shed) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut within_budget = true;
    for s in &clean_scenarios {
        if let Some(r) = &s.resilience {
            res_runs += 1;
            res_requests += r.offered;
            res_spent += r.retries_spent;
            res_denied += r.retries_denied;
            res_shed += r.shed;
            within_budget &= (r.retries_spent as f64) <= 8.0 + ratio * r.offered as f64;
        }
    }
    let spend_ratio = res_spent as f64 / res_requests.max(1) as f64;

    // Fold the proof into BENCH_results.json for CI.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"cells\": {},", designs.len());
    let _ = writeln!(json, "  \"resume_diverged\": false,");
    let _ = writeln!(json, "  \"merge_diverged\": false,");
    let _ = writeln!(
        json,
        "  \"traffic_pack\": \"{}\",",
        args.traffic.unwrap_or(TrafficPack::Steady).label()
    );
    let _ = writeln!(json, "  \"resilience\": {{");
    let _ = writeln!(json, "    \"runs\": {res_runs},");
    let _ = writeln!(json, "    \"requests\": {res_requests},");
    let _ = writeln!(json, "    \"retries_spent\": {res_spent},");
    let _ = writeln!(json, "    \"retries_denied\": {res_denied},");
    let _ = writeln!(json, "    \"shed\": {res_shed},");
    let _ = writeln!(json, "    \"retry_spend_ratio\": {spend_ratio:.6},");
    let _ = writeln!(json, "    \"within_budget\": {within_budget}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"service\": {{");
    let _ = writeln!(json, "    \"cells\": {},", service.cells);
    let _ = writeln!(json, "    \"worker_spawns\": {},", service.spawns);
    let _ = writeln!(json, "    \"worker_kills_observed\": {},", service.kills);
    let _ = writeln!(json, "    \"worker_cells_stolen\": {},", service.stolen);
    let _ = writeln!(json, "    \"worker_retries\": {},", service.retries);
    let _ = writeln!(
        json,
        "    \"worker_merge_conflicts\": {}",
        service.merge_conflicts
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"recovery\": {{");
    let _ = writeln!(json, "    \"kill_resume_configs\": {},", resume.configs);
    let _ = writeln!(json, "    \"cells_replayed\": {},", resume.replayed);
    let _ = writeln!(json, "    \"cells_journaled\": {},", resume.journaled);
    let _ = writeln!(json, "    \"resume_hits\": {},", resume.resume_hits);
    let _ = writeln!(json, "    \"panic_cells\": {},", panics.cells);
    let _ = writeln!(json, "    \"persistent_faults\": {},", panics.persistent);
    let _ = writeln!(json, "    \"transient_faults\": {},", panics.transient);
    let _ = writeln!(json, "    \"task_panics\": {},", panics.panics_caught);
    let _ = writeln!(json, "    \"task_retries\": {},", panics.retries);
    let _ = writeln!(json, "    \"deadline_cancels\": {deadline_cancels}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write("BENCH_results.json", &json).expect("BENCH_results.json is writable");

    clean_eval.export_obs();
    args.write_metrics();
    println!(
        "\nchaos: all waves passed — wrote BENCH_results.json \
         (resume_diverged: false, merge_diverged: false)"
    );
}
