//! Regenerates Figure 3's claims: cooling efficiency and rack density of
//! the dual-entry and microblade packaging designs.
//!
//! Run with `cargo run --release -p wcs-bench --bin fig3`.

use wcs_cooling::datacenter::fleet_footprint;
use wcs_cooling::thermal::{Conductor, HeatSink, ThermalPath};
use wcs_cooling::transient::{simulate_transient, FanController, ThermalNode};
use wcs_cooling::{EnclosureDesign, RackGeometry};

fn main() {
    // Accept the fleet-wide flag cluster; this binary has no fan-out.
    let args = wcs_bench::cli::parse();
    let rack = RackGeometry::standard_42u();
    let designs = [
        EnclosureDesign::conventional_1u(),
        EnclosureDesign::dual_entry(),
        EnclosureDesign::microblade(),
    ];

    println!("Figure 3: packaging and cooling designs");
    println!(
        "{:<32} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "design", "W/system", "fan W/sys", "heat/fan-W", "gain vs 1U", "sys/rack"
    );
    for d in &designs {
        let sol = d.solution(&rack);
        // Exact-class cooling series, derived from the design solution.
        args.obs
            .histogram("cooling.fan_w_per_system_x100")
            .record((d.fan_power_per_system_w() * 100.0).round() as u64);
        args.obs
            .max_gauge("cooling.max_systems_per_rack")
            .observe(u64::from(sol.systems_per_rack));
        println!(
            "{:<32} {:>9.0} {:>12.2} {:>12.1} {:>11.2}x {:>10}",
            d.name,
            d.system_power_w,
            d.fan_power_per_system_w(),
            d.cooling_efficiency(),
            sol.efficiency_gain,
            sol.systems_per_rack
        );
    }
    println!("\n(paper targets: ~2x and ~4x efficiency; 320 and ~1250 systems/rack)");

    // Figure 3(b): the aggregated heat path keeps a 25 W module cool.
    println!("\nAggregated heat removal: junction temperatures for a 25 W module");
    let sink = HeatSink::new(0.35, 0.02);
    let hp = ThermalPath::new(vec![Conductor::heat_pipe(0.12, 2.4e-4)], sink);
    let cu = ThermalPath::new(vec![Conductor::copper(0.12, 2.4e-4)], sink);
    println!(
        "  planar heat pipe (3x copper): {:>5.1} C",
        hp.junction_temp_c(25.0, 35.0, 0.02)
    );
    println!(
        "  copper spreader:              {:>5.1} C",
        cu.junction_temp_c(25.0, 35.0, 0.02)
    );

    // Thermal transient: a load step on a microblade module.
    println!("\nTransient: 10 W -> 25 W load step on a microblade module");
    let node = ThermalNode::new(0.8, 60.0);
    let trace = simulate_transient(
        node,
        FanController::typical(),
        |t| if t < 120.0 { 10.0 } else { 25.0 },
        0.5,
        1200,
    );
    for &i in &[0usize, 239, 300, 600, 1199] {
        let s = trace[i];
        println!(
            "  t={:>5.0}s  rise {:>5.1} K  fan {:>4.0}%",
            s.t_secs,
            s.rise_k,
            s.fan_speed * 100.0
        );
    }

    // Datacenter footprint for a 10k-server fleet.
    println!("\nFleet footprint (10,000 systems):");
    for d in &designs {
        let f = fleet_footprint(d, &rack, 10_000);
        println!(
            "  {:<32} {:>5} racks  {:>7.0} kW IT  {:>6.1} kW fans  {:>7.0} kW CRAC  PUE(mech) {:.2}",
            d.name,
            f.racks,
            f.it_kw,
            f.fan_kw,
            f.crac_kw,
            f.mechanical_pue()
        );
    }
    args.write_metrics();
}
