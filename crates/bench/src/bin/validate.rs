//! Prints the reproduction scorecard: every paper anchor, paper vs
//! measured, pass/fail.
//!
//! Run with `cargo run --release -p wcs-bench --bin validate`
//! (`-- --accurate` for full-accuracy simulation).

use wcs_core::validate::run_scorecard;

fn main() {
    let args = wcs_bench::cli::parse();
    let accurate = args.rest.iter().any(|a| a == "--accurate");
    let builder = args.eval_builder();
    let eval = if accurate { builder } else { builder.quick() }
        .build()
        .expect("profile configuration is valid");
    let card = run_scorecard(&eval);
    println!(
        "{:<10} {:<48} {:>10} {:>10} {:>7}",
        "anchor", "check", "paper", "measured", "status"
    );
    for c in &card.checks {
        println!(
            "{:<10} {:<48} {:>10.3} {:>10.3} {:>7}",
            c.anchor,
            c.what,
            c.paper,
            c.measured,
            if c.pass() { "PASS" } else { "FAIL" }
        );
    }
    println!("\n{}/{} checks pass", card.passed(), card.checks.len());
    eval.export_obs();
    args.write_metrics();
    if !card.all_pass() {
        std::process::exit(1);
    }
}
