//! Regenerates Figure 4 of the paper: memory-blade slowdowns (b) and the
//! provisioning cost/power efficiencies (c).
//!
//! Run with `cargo run --release -p wcs-bench --bin fig4`.

use wcs_memshare::blade::BladeModel;
use wcs_memshare::link::RemoteLink;
use wcs_memshare::policy::PolicyKind;
use wcs_memshare::provisioning::Provisioning;
use wcs_memshare::slowdown::{estimate_slowdown_with, ReplayMemo, SlowdownConfig};
use wcs_platforms::{catalog, PlatformId};
use wcs_tco::{Efficiency, TcoModel};
use wcs_workloads::WorkloadId;

fn main() {
    // Accept the fleet-wide flags; this binary has no fan-out. The memo
    // lets the PCIe and CBF columns (same replay, different link) share
    // one two-level simulation per workload.
    let args = wcs_bench::cli::parse();
    let memo = ReplayMemo::with_enabled(args.memo).with_obs(args.obs.clone());
    println!("Figure 4(b): slowdowns with random replacement (% of execution time)");
    println!(
        "{:<18} {:>10} {:>9} {:>8} {:>10} {:>10}",
        "config", "websearch", "webmail", "ytube", "mapred-wc", "mapred-wr"
    );
    for (label, link, frac) in [
        ("PCIe x4, 25%", RemoteLink::pcie_x4(), 0.25),
        ("CBF,     25%", RemoteLink::pcie_x4_cbf(), 0.25),
        ("PCIe x4, 12.5%", RemoteLink::pcie_x4(), 0.125),
        ("CBF,     12.5%", RemoteLink::pcie_x4_cbf(), 0.125),
    ] {
        print!("{label:<18}");
        for id in WorkloadId::ALL {
            let r = estimate_slowdown_with(
                id,
                &SlowdownConfig {
                    local_fraction: frac,
                    link,
                    ..SlowdownConfig::paper_default()
                },
                &memo,
            )
            .expect("valid slowdown config");
            print!("{:>9.1}%", r.slowdown * 100.0);
        }
        println!();
    }
    println!(
        "(paper, PCIe x4 @ 25%: 4.7 / 0.2 / 1.4 / 0.7 / 0.7; CBF: 1.2 / 0.1 / 0.4 / 0.2 / 0.2)"
    );

    println!("\nReplacement-policy comparison (websearch, 25% local, PCIe x4):");
    for policy in [PolicyKind::Lru, PolicyKind::Clock, PolicyKind::Random] {
        let r = estimate_slowdown_with(
            WorkloadId::Websearch,
            &SlowdownConfig {
                policy,
                ..SlowdownConfig::paper_default()
            },
            &memo,
        )
        .expect("valid slowdown config");
        println!(
            "  {:<8} miss ratio {:>6.3}  slowdown {:>5.2}%",
            format!("{policy:?}"),
            r.stats.miss_ratio(),
            r.slowdown * 100.0
        );
    }

    println!("\nFigure 4(c): provisioning efficiencies relative to the emb1 baseline");
    let base_platform = catalog::platform(PlatformId::Emb1);
    let model = TcoModel::paper_default();
    let base = Efficiency::new(1.0, model.server_tco(&base_platform));
    println!(
        "{:<10} {:>12} {:>8} {:>12}",
        "scheme", "Perf/Inf-$", "Perf/W", "Perf/TCO-$"
    );
    for scheme in [
        Provisioning::static_partitioning(),
        Provisioning::dynamic_provisioning(),
    ] {
        let modified = scheme.apply(&base_platform, &BladeModel::paper_default());
        let eff = Efficiency::new(
            1.0 / (1.0 + scheme.assumed_slowdown),
            model.server_tco(&modified),
        );
        let rel = eff.relative_to(&base);
        println!(
            "{:<10} {:>11.0}% {:>7.0}% {:>11.0}%",
            scheme.name,
            rel.perf_per_inf * 100.0,
            rel.perf_per_watt * 100.0,
            rel.perf_per_tco * 100.0
        );
    }
    println!("(paper: static 102/116/108; dynamic 106/116/111)");
    args.write_metrics();
}
