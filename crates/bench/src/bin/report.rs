//! Generates a complete markdown report of the reproduction: scorecard,
//! per-design evaluations, and the headline comparisons — suitable for
//! `cargo run --release -p wcs-bench --bin report > REPORT.md`.

use wcs_core::designs::DesignPoint;
use wcs_core::report::{render_comparison, render_eval_markdown};
use wcs_core::validate::run_scorecard;
use wcs_platforms::PlatformId;

fn main() {
    let args = wcs_bench::cli::parse();
    let accurate = args.rest.iter().any(|a| a == "--accurate");
    let builder = args.eval_builder();
    let eval = if accurate { builder } else { builder.quick() }
        .build()
        .expect("profile configuration is valid");

    println!("# wcs reproduction report\n");
    println!(
        "Lim et al., *Understanding and Designing New Server Architectures for \
         Emerging Warehouse-Computing Environments*, ISCA 2008.\n"
    );

    // Scorecard.
    println!("## Scorecard\n");
    println!("| anchor | check | paper | measured | status |");
    println!("|---|---|---:|---:|---|");
    let card = run_scorecard(&eval);
    for c in &card.checks {
        println!(
            "| {} | {} | {:.3} | {:.3} | {} |",
            c.anchor,
            c.what,
            c.paper,
            c.measured,
            if c.pass() { "PASS" } else { "**FAIL**" }
        );
    }
    println!("\n{}/{} checks pass\n", card.passed(), card.checks.len());

    // Headline comparisons.
    let base = eval
        .evaluate(&DesignPoint::baseline_srvr1())
        .expect("baseline evaluates");
    println!("## Unified designs vs srvr1\n");
    for design in [DesignPoint::n1(), DesignPoint::n2()] {
        let e = eval.evaluate(&design).expect("design evaluates");
        println!("```text");
        print!("{}", render_comparison(&e.compare(&base)));
        println!("```");
    }

    // Per-design detail.
    println!("\n## Design details\n");
    for id in [PlatformId::Srvr1, PlatformId::Emb1] {
        let e = eval
            .evaluate(&DesignPoint::baseline(id))
            .expect("baseline evaluates");
        println!("{}", render_eval_markdown(&e));
    }
    for design in [DesignPoint::n1(), DesignPoint::n2()] {
        let e = eval.evaluate(&design).expect("design evaluates");
        println!("{}", render_eval_markdown(&e));
    }
    eval.export_obs();
    args.write_metrics();
}
