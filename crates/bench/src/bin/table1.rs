//! Prints Table 1 of the paper: the benchmark-suite summary.
//!
//! Run with `cargo run --release -p wcs-bench --bin table1`.

use wcs_workloads::{suite, Metric};

fn main() {
    // Accept the fleet-wide flag cluster; this binary has no fan-out.
    let args = wcs_bench::cli::parse();
    println!("Table 1: the warehouse-computing benchmark suite");
    println!(
        "{:<12} {:<38} {:<18} description",
        "workload", "emphasizes", "perf metric"
    );
    for w in suite::all() {
        let metric = match w.metric {
            Metric::ThroughputQos(q) => format!(
                "RPS w/ QoS (p{:.0} < {:.1}s)",
                q.percentile,
                q.bound.as_secs_f64()
            ),
            Metric::Batch { tasks, .. } => format!("exec time ({tasks} tasks)"),
        };
        println!(
            "{:<12} {:<38} {:<18} {}",
            w.id.label(),
            w.emphasizes,
            metric,
            w.description
        );
    }

    println!("\nDemand models (calibrated against Figure 2(c); see EXPERIMENTS.md):");
    println!(
        "{:<12} {:>12} {:>7} {:>8} {:>9} {:>9} {:>10} {:>10}",
        "workload", "cpu GHz-s", "sigma", "cache-s", "ws MiB", "IOs/req", "IO bytes", "net bytes"
    );
    for w in suite::all() {
        let d = &w.demand;
        println!(
            "{:<12} {:>12.5} {:>7.3} {:>8.3} {:>9.2} {:>9.4} {:>10.0} {:>10.0}",
            w.id.label(),
            d.cpu_ghz_s,
            d.sigma,
            d.cache_sensitivity,
            d.cache_ws_mib,
            d.io_per_req,
            d.io_bytes,
            d.net_bytes
        );
    }
    args.write_metrics();
}
