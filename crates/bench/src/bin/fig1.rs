//! Regenerates Figure 1 of the paper: the cost model detail table for
//! srvr1/srvr2 (a) and the srvr2 TCO breakdown (b).
//!
//! Run with `cargo run --release -p wcs-bench --bin fig1`.

use wcs_platforms::{catalog, Component, PlatformId};
use wcs_tco::TcoModel;

fn main() {
    // Accept the fleet-wide flag cluster; this binary has no fan-out.
    let args = wcs_bench::cli::parse();
    let model = TcoModel::paper_default();
    let srvr1 = catalog::platform(PlatformId::Srvr1);
    let srvr2 = catalog::platform(PlatformId::Srvr2);
    let r1 = model.server_tco(&srvr1);
    let r2 = model.server_tco(&srvr2);

    println!("Figure 1(a): cost model detail (paper values: srvr1 $5,758, srvr2 $3,249)");
    println!("{:<22} {:>10} {:>10}", "detail", "srvr1", "srvr2");
    let comp = [
        Component::Cpu,
        Component::Memory,
        Component::Disk,
        Component::BoardMgmt,
        Component::PowerFans,
    ];
    for c in comp {
        println!(
            "{:<22} {:>10.0} {:>10.0}",
            format!("{c} cost ($)"),
            srvr1.component_cost(c),
            srvr2.component_cost(c)
        );
    }
    println!(
        "{:<22} {:>10.0} {:>10.0}",
        "Per-server cost ($)",
        srvr1.hardware_cost_usd(),
        srvr2.hardware_cost_usd()
    );
    for c in comp {
        println!(
            "{:<22} {:>10.0} {:>10.0}",
            format!("{c} power (W)"),
            srvr1.component_power(c),
            srvr2.component_power(c)
        );
    }
    println!(
        "{:<22} {:>10.0} {:>10.0}",
        "Server power (W)",
        srvr1.max_power_w(),
        srvr2.max_power_w()
    );
    let b = &model.burdened;
    println!(
        "{:<22} {:>10} {:>10}",
        "K1 / L1 / K2",
        format!("{}/{}/{}", b.k1, b.l1, b.k2),
        ""
    );
    println!(
        "{:<22} {:>10.2} {:>10.2}",
        "Activity factor", b.activity_factor, b.activity_factor
    );
    println!(
        "{:<22} {:>10.0} {:>10.0}",
        "3-yr power & cooling ($)",
        r1.pc_usd(),
        r2.pc_usd()
    );
    println!(
        "{:<22} {:>10.0} {:>10.0}",
        "Total costs ($)",
        r1.total_usd(),
        r2.total_usd()
    );

    println!("\nFigure 1(b): srvr2 TCO breakdown (% of total)");
    println!("{:<14} {:>8} {:>8}", "component", "HW %", "P&C %");
    for c in [
        Component::Cpu,
        Component::Memory,
        Component::Disk,
        Component::BoardMgmt,
        Component::PowerFans,
        Component::RackSwitch,
    ] {
        println!(
            "{:<14} {:>7.1}% {:>7.1}%",
            c.to_string(),
            r2.hw_fraction(c) * 100.0,
            r2.pc_fraction(c) * 100.0
        );
    }
    args.write_metrics();
}
