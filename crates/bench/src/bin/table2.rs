//! Regenerates Table 2 of the paper: the six platforms with their
//! features, power, and infrastructure cost.
//!
//! Run with `cargo run --release -p wcs-bench --bin table2`.

use wcs_platforms::catalog;

fn main() {
    // Accept the fleet-wide flag cluster; this binary has no fan-out.
    let args = wcs_bench::cli::parse();
    println!("Table 2: systems considered");
    println!(
        "{:<7} {:<34} {:<46} {:>6} {:>7}",
        "system", "similar to", "features", "Watt", "Inf-$"
    );
    let switch = catalog::switch_share();
    for p in catalog::all() {
        println!(
            "{:<7} {:<34} {:<46} {:>6.0} {:>7.0}",
            p.name,
            p.cpu.name,
            format!(
                "{}p x {} cores, {:.1} GHz, {}, {}K/{} L1/L2",
                p.cpu.sockets,
                p.cpu.cores_per_socket,
                p.cpu.freq_ghz,
                p.cpu.microarch,
                p.cpu.l1_kib,
                if p.cpu.l2_kib >= 1024 {
                    format!("{}MB", p.cpu.l2_kib / 1024)
                } else {
                    format!("{}K", p.cpu.l2_kib)
                }
            ),
            p.max_power_w(),
            p.hardware_cost_usd() + switch.cost_usd
        );
    }
    println!(
        "\n(Inf-$ includes the ${:.2} per-server rack-switch share.)",
        switch.cost_usd
    );
    args.write_metrics();
}
