//! Fault injection: the Figure-5 unified designs re-examined under
//! failures — the paper's Section 4 reliability caveat, quantified.
//!
//! Three scenarios exercise the graceful-degradation paths end to end:
//!
//! 1. **Single blade failure** — one server of an N2-style ensemble
//!    crashes and repairs; the dispatcher fails over, requests retry
//!    with backoff, and the memory-blade fallback prices remote pages
//!    at disk-swap latency while the blade is down.
//! 2. **Link flap** — short, frequent PCIe outages on every server;
//!    timeouts and retries dominate, goodput dips below offered load.
//! 3. **Fan failure** — the shared fan wall of the dense enclosure
//!    loses fans; slots throttle to what the surviving airflow can
//!    cool instead of shutting down.
//!
//! The closing table folds the measured availabilities into the
//! Figure-5 Perf/TCO-$ comparison. Run with
//! `cargo run --release -p wcs-bench --bin faults`.

use wcs_cooling::faults::{expected_perf_under_fan_faults, throttle, FanWall};
use wcs_cooling::EnclosureDesign;
use wcs_core::designs::DesignPoint;
use wcs_core::evaluate::Evaluator;
use wcs_memshare::degraded::assess_blade_outages;
use wcs_memshare::slowdown::SlowdownConfig;
use wcs_simcore::faults::FaultProcess;
use wcs_simcore::{SimDuration, SimRng, SimTime};
use wcs_simserver::{Cluster, ClusterFaults, Resource, RetryPolicy, RunStats, ServerSpec, Stage};
use wcs_tco::{AvailabilityModel, AvailableEfficiency};
use wcs_workloads::WorkloadId;

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

fn websearch_source(rng: &mut SimRng) -> Vec<Stage> {
    vec![Stage::new(
        Resource::Cpu,
        rng.exp_duration(SimDuration::from_micros(800)),
    )]
}

fn print_run(label: &str, stats: &RunStats) {
    let f = &stats.faults;
    println!(
        "  {:<22} {:>9.0} {:>9.0} {:>8} {:>8} {:>8} {:>9.2}",
        label,
        stats.offered_rps(),
        stats.goodput_rps(),
        f.timeouts,
        f.retries,
        f.dropped,
        stats.latency.percentile(99.0).unwrap_or(0.0) * 1e3,
    );
}

fn main() {
    let servers = 16u32;
    let cluster = Cluster::ideal(ServerSpec::new(2), servers).expect("non-empty cluster");
    let retry =
        RetryPolicy::new(secs(0.008), 3, SimDuration::from_millis(2)).expect("positive timeout");
    let run = |faults: &ClusterFaults, retry: &RetryPolicy| {
        cluster
            .run_closed_loop_faulted(&mut websearch_source, 64, 2_000, 40_000, 17, faults, retry)
            .expect("valid run parameters")
    };

    println!("Scenario runs: {servers}-server ensemble, 64 closed-loop clients, seed 17");
    println!(
        "  {:<22} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9}",
        "scenario", "offered/s", "goodput/s", "timeouts", "retries", "dropped", "p99 (ms)"
    );

    let healthy = run(&ClusterFaults::fail_free(), &RetryPolicy::none());
    print_run("fail-free", &healthy);

    // 1. Single blade failure: server 3 dies mid-measurement for a
    // quarter of the run and comes back.
    let window = healthy.window.as_secs_f64().max(1.0);
    let outage =
        ClusterFaults::single_outage(3, SimTime::ZERO + secs(0.2 * window), secs(0.5 * window));
    print_run("single blade failure", &run(&outage, &retry));

    // 2. Link flap: every server sees frequent 20 ms outages (MTTF a
    // few hundred ms) for the whole run.
    let flap = FaultProcess::exponential(secs(0.4), secs(0.02)).expect("positive rates");
    let flap_plan =
        ClusterFaults::from_processes(&vec![flap; servers as usize], secs(2.0 * window), 23);
    print_run("link flap (all)", &run(&flap_plan, &retry));

    // The same flap without retries: drops replace recoveries.
    print_run(
        "link flap, no retry",
        &run(&flap_plan, &RetryPolicy::none()),
    );

    // 3. Memory-blade outage pricing: while the blade is down, remote
    // pages come from disk swap.
    println!("\nMemory-blade degradation (25% local, PCIe x4 vs disk-swap fallback):");
    let blade = FaultProcess::exponential(secs(500_000.0), secs(900.0)).expect("positive rates");
    let cfg = SlowdownConfig {
        fill: 400_000,
        measured: 400_000,
        ..SlowdownConfig::paper_default()
    };
    let mut blade_availability = 1.0f64;
    for wl in [
        WorkloadId::Websearch,
        WorkloadId::Ytube,
        WorkloadId::Webmail,
    ] {
        let out = assess_blade_outages(wl, &cfg, &blade, secs(10_000_000.0), 29)
            .expect("valid assessment");
        blade_availability = blade_availability.min(out.availability);
        println!(
            "  {:<12} normal {:>6.2}%  blade-down {:>7.1}%  availability {:>7.4}  effective {:>6.2}%",
            format!("{wl}"),
            out.normal.slowdown * 100.0,
            out.degraded.slowdown * 100.0,
            out.availability,
            out.effective_slowdown() * 100.0,
        );
    }

    // 4. Fan failure: the dense enclosure throttles instead of dying.
    println!("\nFan-wall failure (dual-entry enclosure, 6 fans sized N+1, 30% idle floor):");
    let design = EnclosureDesign::dual_entry();
    let wall = FanWall::n_plus_one();
    for failed in 0..=3u32 {
        let t = throttle(&design, &wall, failed, 0.3).expect("valid idle fraction");
        println!(
            "  {failed} failed: airflow {:>4.0}%  power cap {:>5.1} W  sustained perf {:>4.0}%",
            t.flow_fraction * 100.0,
            t.power_cap_w,
            t.perf_fraction * 100.0,
        );
    }
    let fan = FaultProcess::exponential(secs(200_000.0), secs(14_400.0)).expect("positive rates");
    let with_spare =
        expected_perf_under_fan_faults(&design, &wall, &fan, secs(100_000_000.0), 0.3, 31)
            .expect("valid fan model");
    let bare_wall = FanWall::new(6, 0).expect("valid wall");
    let fan_perf =
        expected_perf_under_fan_faults(&design, &bare_wall, &fan, secs(100_000_000.0), 0.3, 31)
            .expect("valid fan model");
    println!(
        "  expected perf under fan failures: N+1 wall {:.2}%, no spare {:.2}%",
        with_spare * 100.0,
        fan_perf * 100.0
    );

    // 5. Fold availability into the Figure-5 comparison.
    println!("\nAvailability-adjusted Figure 5 (websearch Perf/TCO-$ vs srvr1):");
    let eval = Evaluator::quick();
    let baseline = eval
        .evaluate(&DesignPoint::baseline_srvr1())
        .expect("baseline evaluates");
    let base_eff = AvailableEfficiency::new(
        baseline.efficiency(WorkloadId::Websearch),
        AvailabilityModel::from_mttf_mttr(30_000.0, 4.0, 150.0).expect("valid server model"),
        3.0,
    )
    .expect("positive depreciation");
    for design in [DesignPoint::n1(), DesignPoint::n2()] {
        let e = eval.evaluate(&design).expect("design evaluates");
        let healthy_eff = AvailableEfficiency::new(
            e.efficiency(WorkloadId::Websearch),
            AvailabilityModel::from_mttf_mttr(30_000.0, 4.0, 150.0).expect("valid server model"),
            3.0,
        )
        .expect("positive depreciation");
        // The shared blade and fan wall burden the unified design:
        // its delivered perf also scales with blade availability and
        // fan-throttled speed.
        let burdened_availability = healthy_eff.model.availability * blade_availability * fan_perf;
        let burdened_eff = AvailableEfficiency::new(
            e.efficiency(WorkloadId::Websearch),
            AvailabilityModel::new(burdened_availability, 1.5, 150.0)
                .expect("availability stays in (0, 1]"),
            3.0,
        )
        .expect("positive depreciation");
        println!(
            "  {:<26} healthy {:>5.2}x   with ensemble faults {:>5.2}x",
            e.name,
            healthy_eff.relative_to(&base_eff).perf_per_tco,
            burdened_eff.relative_to(&base_eff).perf_per_tco,
        );
    }
    println!("\n(deterministic: fixed seeds 17/23/29/31; rerun reproduces bit-identical output)");
}
