//! Fault injection: the Figure-5 unified designs re-examined under
//! failures — the paper's Section 4 reliability caveat, quantified.
//!
//! Three scenarios exercise the graceful-degradation paths end to end:
//!
//! 1. **Single blade failure** — one server of an N2-style ensemble
//!    crashes and repairs; the dispatcher fails over, requests retry
//!    with backoff, and the memory-blade fallback prices remote pages
//!    at disk-swap latency while the blade is down.
//! 2. **Link flap** — short, frequent PCIe outages on every server;
//!    timeouts and retries dominate, goodput dips below offered load.
//! 3. **Fan failure** — the shared fan wall of the dense enclosure
//!    loses fans; slots throttle to what the surviving airflow can
//!    cool instead of shutting down.
//!
//! The closing table folds the measured availabilities into the
//! Figure-5 Perf/TCO-$ comparison, and a degraded-mode traffic section
//! replays the `--traffic` pack (steady by default) through the open
//! loop against a blade outage with and without the resilience layer.
//! Run with `cargo run --release -p wcs-bench --bin faults
//! [--threads N] [--traffic PACK]`.
//!
//! The scenarios are scheduled in two parallel waves: everything
//! independent of the measured window (healthy run, blade assessments,
//! fan models, Figure-5 evaluations) fans out first, then the three
//! fault-window runs that need the healthy run's window. Output is
//! printed after both waves in a fixed order, so it is byte-identical
//! at every `--threads` value.

use wcs_bench::cli::{self, run_or_exit};
use wcs_cooling::faults::{expected_perf_under_fan_faults, throttle_obs, FanWall};
use wcs_cooling::EnclosureDesign;
use wcs_core::designs::DesignPoint;
use wcs_core::evaluate::DesignEval;
use wcs_memshare::degraded::{assess_blade_outages, DegradedOutcome};
use wcs_memshare::slowdown::SlowdownConfig;
use wcs_simcore::faults::{DownWindow, FaultProcess};
use wcs_simcore::pool::Task;
use wcs_simcore::{SimDuration, SimRng, SimTime};
use wcs_simserver::{
    run_open_loop_resilient, Cluster, ClusterFaults, RateProfile, ResilienceConfig, Resource,
    RetryPolicy, RunStats, ServerSpec, Stage,
};
use wcs_tco::{AvailabilityModel, AvailableEfficiency};
use wcs_workloads::{TrafficPack, WorkloadId};

/// One result from the first wave of independent scenario work.
enum Piece {
    Stats(Box<RunStats>),
    Blade(DegradedOutcome),
    Fan(f64),
    Eval(Box<DesignEval>),
}

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

fn websearch_source(rng: &mut SimRng) -> Vec<Stage> {
    vec![Stage::new(
        Resource::Cpu,
        rng.exp_duration(SimDuration::from_micros(800)),
    )]
}

fn print_run(label: &str, stats: &RunStats) {
    let f = &stats.faults;
    println!(
        "  {:<22} {:>9.0} {:>9.0} {:>8} {:>8} {:>8} {:>9.2}",
        label,
        stats.offered_rps(),
        stats.goodput_rps(),
        f.timeouts,
        f.retries,
        f.dropped,
        stats.latency.percentile(99.0).unwrap_or(0.0) * 1e3,
    );
}

fn main() {
    let args = cli::parse();
    let pool = args.pool;
    let servers = 16u32;
    let cluster = Cluster::ideal(ServerSpec::new(2), servers).expect("non-empty cluster");
    let retry =
        RetryPolicy::new(secs(0.008), 3, SimDuration::from_millis(2)).expect("positive timeout");
    let run = |faults: &ClusterFaults, retry: &RetryPolicy| {
        cluster
            .run_closed_loop_faulted(&mut websearch_source, 64, 2_000, 40_000, 17, faults, retry)
            .expect("valid run parameters")
    };

    // Wave 1: everything that does not need the healthy run's measured
    // window — the healthy run itself, the blade-outage assessments, the
    // fan-fault expectations, and the three Figure-5 evaluations. Each
    // task is seeded independently, so the fan-out cannot change any
    // number.
    let blade = FaultProcess::exponential(secs(500_000.0), secs(900.0)).expect("positive rates");
    let cfg = SlowdownConfig {
        fill: 400_000,
        measured: 400_000,
        ..SlowdownConfig::paper_default()
    };
    let design = EnclosureDesign::dual_entry();
    let wall = FanWall::n_plus_one();
    let fan = FaultProcess::exponential(secs(200_000.0), secs(14_400.0)).expect("positive rates");
    let bare_wall = FanWall::new(6, 0).expect("valid wall");
    let eval = args.build_evaluator(|b| b.quick());

    let blade_workloads = [
        WorkloadId::Websearch,
        WorkloadId::Ytube,
        WorkloadId::Webmail,
    ];
    let mut tasks: Vec<Task<'_, Piece>> = Vec::new();
    tasks.push(Box::new(|| {
        Piece::Stats(Box::new(run(
            &ClusterFaults::fail_free(),
            &RetryPolicy::none(),
        )))
    }));
    for wl in blade_workloads {
        let (cfg, blade) = (&cfg, &blade);
        tasks.push(Box::new(move || {
            Piece::Blade(
                assess_blade_outages(wl, cfg, blade, secs(10_000_000.0), 29)
                    .expect("valid assessment"),
            )
        }));
    }
    for w in [&wall, &bare_wall] {
        let (design, fan) = (&design, &fan);
        tasks.push(Box::new(move || {
            Piece::Fan(
                expected_perf_under_fan_faults(design, w, fan, secs(100_000_000.0), 0.3, 31)
                    .expect("valid fan model"),
            )
        }));
    }
    for d in [
        DesignPoint::baseline_srvr1(),
        DesignPoint::n1(),
        DesignPoint::n2(),
    ] {
        let eval = &eval;
        tasks.push(Box::new(move || {
            Piece::Eval(Box::new(run_or_exit(
                "design evaluation",
                eval.evaluate(&d),
            )))
        }));
    }

    let (mut stats, mut blades, mut fans, mut evals) = (vec![], vec![], vec![], vec![]);
    for piece in pool.par_tasks(tasks) {
        match piece {
            Piece::Stats(s) => stats.push(s),
            Piece::Blade(b) => blades.push(b),
            Piece::Fan(f) => fans.push(f),
            Piece::Eval(e) => evals.push(e),
        }
    }
    let healthy = stats.pop().expect("healthy run scheduled");

    // Wave 2: the three fault-window runs, sized off the healthy run's
    // measured window.
    // 1. Single blade failure: server 3 dies mid-measurement for a
    // quarter of the run and comes back.
    let window = healthy.window.as_secs_f64().max(1.0);
    let outage =
        ClusterFaults::single_outage(3, SimTime::ZERO + secs(0.2 * window), secs(0.5 * window));
    // 2. Link flap: every server sees frequent 20 ms outages (MTTF a
    // few hundred ms) for the whole run; once with retries, once with
    // drops replacing recoveries.
    let flap = FaultProcess::exponential(secs(0.4), secs(0.02)).expect("positive rates");
    let flap_plan =
        ClusterFaults::from_processes(&vec![flap; servers as usize], secs(2.0 * window), 23);
    let faulted = pool.par_tasks(vec![
        Box::new(|| run(&outage, &retry)) as Task<'_, RunStats>,
        Box::new(|| run(&flap_plan, &retry)),
        Box::new(|| run(&flap_plan, &RetryPolicy::none())),
    ]);

    println!("Scenario runs: {servers}-server ensemble, 64 closed-loop clients, seed 17");
    println!(
        "  {:<22} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9}",
        "scenario", "offered/s", "goodput/s", "timeouts", "retries", "dropped", "p99 (ms)"
    );
    print_run("fail-free", &healthy);
    print_run("single blade failure", &faulted[0]);
    print_run("link flap (all)", &faulted[1]);
    print_run("link flap, no retry", &faulted[2]);
    // Deterministic queue.* and faults.* series, recorded from the
    // returned run statistics in a fixed order.
    healthy.export_obs(&args.obs);
    for run in &faulted {
        run.export_obs(&args.obs);
    }

    // 3. Memory-blade outage pricing: while the blade is down, remote
    // pages come from disk swap.
    println!("\nMemory-blade degradation (25% local, PCIe x4 vs disk-swap fallback):");
    let mut blade_availability = 1.0f64;
    for (wl, out) in blade_workloads.iter().zip(&blades) {
        blade_availability = blade_availability.min(out.availability);
        println!(
            "  {:<12} normal {:>6.2}%  blade-down {:>7.1}%  availability {:>7.4}  effective {:>6.2}%",
            format!("{wl}"),
            out.normal.slowdown * 100.0,
            out.degraded.slowdown * 100.0,
            out.availability,
            out.effective_slowdown() * 100.0,
        );
    }

    // 4. Fan failure: the dense enclosure throttles instead of dying.
    println!("\nFan-wall failure (dual-entry enclosure, 6 fans sized N+1, 30% idle floor):");
    for failed in 0..=3u32 {
        let t = throttle_obs(&design, &wall, failed, 0.3, &args.obs).expect("valid idle fraction");
        println!(
            "  {failed} failed: airflow {:>4.0}%  power cap {:>5.1} W  sustained perf {:>4.0}%",
            t.flow_fraction * 100.0,
            t.power_cap_w,
            t.perf_fraction * 100.0,
        );
    }
    let (with_spare, fan_perf) = (fans[0], fans[1]);
    println!(
        "  expected perf under fan failures: N+1 wall {:.2}%, no spare {:.2}%",
        with_spare * 100.0,
        fan_perf * 100.0
    );

    // 5. Fold availability into the Figure-5 comparison.
    println!("\nAvailability-adjusted Figure 5 (websearch Perf/TCO-$ vs srvr1):");
    let baseline = &evals[0];
    let base_eff = AvailableEfficiency::new(
        baseline.efficiency(WorkloadId::Websearch),
        AvailabilityModel::from_mttf_mttr(30_000.0, 4.0, 150.0).expect("valid server model"),
        3.0,
    )
    .expect("positive depreciation");
    for e in &evals[1..] {
        let healthy_eff = AvailableEfficiency::new(
            e.efficiency(WorkloadId::Websearch),
            AvailabilityModel::from_mttf_mttr(30_000.0, 4.0, 150.0).expect("valid server model"),
            3.0,
        )
        .expect("positive depreciation");
        // The shared blade and fan wall burden the unified design:
        // its delivered perf also scales with blade availability and
        // fan-throttled speed.
        let burdened_availability = healthy_eff.model.availability * blade_availability * fan_perf;
        let burdened_eff = AvailableEfficiency::new(
            e.efficiency(WorkloadId::Websearch),
            AvailabilityModel::new(burdened_availability, 1.5, 150.0)
                .expect("availability stays in (0, 1]"),
            3.0,
        )
        .expect("positive depreciation");
        println!(
            "  {:<26} healthy {:>5.2}x   with ensemble faults {:>5.2}x",
            e.name,
            healthy_eff.relative_to(&base_eff).perf_per_tco,
            burdened_eff.relative_to(&base_eff).perf_per_tco,
        );
    }
    // 6. Degraded-mode traffic: the `--traffic` pack replayed through
    // the open loop against a blade outage, with and without the
    // resilience layer — the retry storm the unconditional path allows
    // next to the budgeted, shedding, breaker-guarded one.
    let pack = args.traffic.unwrap_or(TrafficPack::Steady);
    let (t_warm, t_meas) = (2_000u64, 10_000u64);
    let capacity = 1_000.0f64;
    let profile = match pack {
        TrafficPack::Steady => RateProfile::constant(),
        p => p
            .profile(capacity, t_warm + t_meas)
            .expect("non-steady packs render a profile"),
    };
    let span = (t_warm + t_meas) as f64 / (capacity * profile.mean());
    let blade_down = [DownWindow {
        down_at: SimTime::ZERO + secs(0.30 * span),
        up_at: SimTime::ZERO + secs(0.45 * span),
    }];
    let open_retry = RetryPolicy {
        timeout: None,
        max_retries: 4,
        backoff: SimDuration::from_millis(2),
    };
    let mut traffic_runs = Vec::new();
    for (label, config) in [
        ("no resilience", ResilienceConfig::disabled()),
        ("resilient", ResilienceConfig::standard(capacity)),
    ] {
        let mut source = websearch_source;
        let (stats, res) = run_open_loop_resilient(
            ServerSpec::new(2),
            &mut source,
            capacity,
            &profile,
            t_warm,
            t_meas,
            17,
            &blade_down,
            &open_retry,
            &config,
        );
        traffic_runs.push((label, stats, res));
    }
    println!(
        "\nDegraded-mode traffic: `{}` pack vs a 15%-of-run blade outage \
         (open loop, {capacity:.0} RPS capacity):",
        pack.label()
    );
    println!(
        "  {:<16} {:>9} {:>8} {:>9} {:>8} {:>8} {:>9} {:>9}",
        "mode", "offered", "shed", "goodput/s", "retries", "dropped", "fastfail", "p99 (ms)"
    );
    for (label, stats, res) in &traffic_runs {
        println!(
            "  {:<16} {:>9} {:>8} {:>9.0} {:>8} {:>8} {:>9} {:>9.2}",
            label,
            res.offered.max(stats.faults.offered),
            res.shed(),
            stats.goodput_rps(),
            stats.faults.retries,
            stats.faults.dropped,
            res.breaker_fast_fails,
            stats.latency.percentile(99.0).unwrap_or(0.0) * 1e3,
        );
        stats.export_obs(&args.obs);
    }
    let (_, _, res) = &traffic_runs[1];
    args.obs.counter("resilience.runs").inc();
    args.obs.counter("resilience.requests").add(res.offered);
    args.obs.counter("resilience.shed").add(res.shed());
    args.obs
        .counter("resilience.retries_spent")
        .add(res.retries_spent);
    args.obs
        .counter("resilience.retries_denied")
        .add(res.retries_denied);
    args.obs
        .counter("resilience.breaker_trips")
        .add(res.breaker_trips);
    args.obs
        .counter("resilience.fast_fails")
        .add(res.breaker_fast_fails);

    println!("\n(deterministic: fixed seeds 17/23/29/31; rerun reproduces bit-identical output)");
    eval.export_obs();
    args.write_metrics();
}
