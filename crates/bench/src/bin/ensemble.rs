//! The ensemble study: several servers sharing one memory blade, with
//! allocation enforcement and PCIe link contention — Section 3.4's
//! mechanisms operating together, plus the page-sharing and hybrid-blade
//! extensions.
//!
//! Run with `cargo run --release -p wcs-bench --bin ensemble`.

use wcs_bench::cli;
use wcs_memshare::ensemble::{run_ensemble_pooled, ServerConfig};
use wcs_memshare::hybrid::HybridBlade;
use wcs_memshare::link::RemoteLink;
use wcs_memshare::pageshare::{dedup_scan, ContentProfile};
use wcs_memshare::policy::PolicyKind;
use wcs_workloads::WorkloadId;

fn main() {
    // Per-server replays fan out over the pool; results are identical at
    // any --threads value.
    let args = cli::parse();
    let pool = args.pool;
    println!("Ensemble: servers sharing one memory blade (websearch, 25% local)");
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>16}",
        "servers", "link util", "queueing us", "slowdown", "(isolated est.)"
    );
    for n in [2usize, 4, 8, 12, 16] {
        let configs = vec![ServerConfig::paper_default(WorkloadId::Websearch); n];
        let out = run_ensemble_pooled(
            &configs,
            RemoteLink::pcie_x4(),
            PolicyKind::Random,
            600_000,
            7,
            pool,
        )
        .expect("non-empty ensemble");
        println!(
            "{:>8} {:>9.0}% {:>12.2} {:>13.2}% {:>15}",
            n,
            out.link_utilization * 100.0,
            out.link_queueing_secs * 1e6,
            out.worst_slowdown() * 100.0,
            "~5.3%"
        );
    }

    println!("\nMixed ensemble (one of each service + mapred-wc):");
    let configs = vec![
        ServerConfig::paper_default(WorkloadId::Websearch),
        ServerConfig::paper_default(WorkloadId::Webmail),
        ServerConfig::paper_default(WorkloadId::Ytube),
        ServerConfig::paper_default(WorkloadId::MapredWc),
    ];
    let out = run_ensemble_pooled(
        &configs,
        RemoteLink::pcie_x4(),
        PolicyKind::Random,
        800_000,
        11,
        pool,
    )
    .expect("non-empty ensemble");
    for s in &out.servers {
        println!(
            "  {:<12} miss {:>5.1}%  {:>7.0} faults/s  slowdown {:>5.2}%",
            s.workload.label(),
            s.miss_ratio * 100.0,
            s.faults_per_cpu_sec,
            s.slowdown * 100.0
        );
    }

    println!("\nContent-based page sharing across the ensemble (homogeneous stack):");
    for n in [1u32, 4, 16, 64] {
        let r = dedup_scan(&ContentProfile::homogeneous_stack(), n, 50_000, 3);
        println!(
            "  {n:>3} servers: {:>9} logical pages -> {:>9} physical ({:.0}% saved)",
            r.logical_pages,
            r.physical_pages,
            r.saving() * 100.0
        );
    }

    println!("\nDRAM/flash hybrid blade (websearch's 4.7% all-DRAM slowdown):");
    for (dram, hits) in [(1.0, 1.0), (0.75, 0.97), (0.5, 0.90), (0.25, 0.75)] {
        let h = HybridBlade::new(dram, hits, RemoteLink::pcie_x4());
        println!(
            "  {:>3.0}% DRAM ({:>3.0}% warm hits): slowdown {:>5.1}%  capacity cost {:>4.0}%  power {:>4.0}%",
            dram * 100.0,
            hits * 100.0,
            0.047 * h.slowdown_scale() * 100.0,
            h.relative_capacity_cost() * 100.0,
            h.relative_power() * 100.0
        );
    }
    args.write_metrics();
}
