//! `wcs-served` — the crash-tolerant multi-process sweep service.
//!
//! Shards the service plan across worker processes (lease-based work
//! stealing over per-worker journals), survives worker deaths and
//! stalls, and merges the surviving journals into one canonical journal
//! byte-identical to an uninterrupted single-process `--threads 1` run.
//! See `wcs_bench::service` for the protocol and
//! `DESIGN.md` §10 for the architecture.
//!
//! Flags (on top of the shared cluster from `wcs_bench::cli`):
//!
//! * `--workers N` — worker process count (default 4),
//! * `--plan-cells N` — truncate the plan to its first `N` cells,
//! * `--out PATH` — canonical journal destination (default under a
//!   temp scratch directory),
//! * `--dir PATH` — scratch directory for per-worker journals,
//! * `--status-port P` — serve `/status` and `/metrics` on
//!   `127.0.0.1:P` (0 picks an ephemeral port),
//! * `--stall-ms N` — lease deadline: a worker whose journal stops
//!   growing for `N` ms is killed and its cells stolen (default 20000),
//! * `--max-retries N` — respawn budget per cell lineage (default 5),
//! * `--kill-at f1,f2,...` — chaos: SIGKILL a live worker when the
//!   completed-cell fraction first reaches each `f`,
//! * `--stall-worker IDX:AFTER` — chaos: worker `IDX` stalls (alive, no
//!   progress) after completing `AFTER` cells, exercising lease expiry,
//! * `--verify` — additionally run the uninterrupted single-process
//!   reference, compare journal bytes and rendered results, and write
//!   `SERVICE_results.json`; exits nonzero on any divergence.

use std::path::PathBuf;
use std::sync::atomic::Ordering;

use wcs_bench::cli::{self, run_or_exit, EXIT_ERROR, EXIT_USAGE};
use wcs_bench::service::{maybe_run_worker, run_serial_reference, run_supervisor, ServiceOptions};
use wcs_simcore::obs::Registry;

fn usage_err(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: wcs-served [--workers N] [--plan-cells N] [--out PATH] [--dir PATH] \
         [--status-port P] [--stall-ms N] [--max-retries N] [--kill-at f1,f2] \
         [--stall-worker IDX:AFTER] [--verify] [shared flags]"
    );
    std::process::exit(EXIT_USAGE);
}

fn main() {
    maybe_run_worker();
    let args = cli::parse();

    let mut opts = ServiceOptions::new(4);
    opts.obs = args.obs.clone();
    if let Some(seed) = args.seed {
        opts.seed = seed;
    }
    let mut verify = false;
    let mut results_path = PathBuf::from("SERVICE_results.json");
    let mut rest = args.rest.iter();
    while let Some(arg) = rest.next() {
        let mut value = |flag: &str| -> String {
            match rest.next() {
                Some(v) => v.clone(),
                None => usage_err(&format!("{flag} requires a value")),
            }
        };
        match arg.as_str() {
            "--workers" => {
                let v = value("--workers");
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => opts.workers = n,
                    _ => usage_err(&format!("--workers expects a positive integer, got {v:?}")),
                }
            }
            "--plan-cells" => {
                let v = value("--plan-cells");
                opts.plan_cells = v.parse().unwrap_or_else(|_| {
                    usage_err(&format!("--plan-cells expects an integer, got {v:?}"))
                });
            }
            "--out" => opts.out = PathBuf::from(value("--out")),
            "--dir" => opts.dir = PathBuf::from(value("--dir")),
            "--status-port" => {
                let v = value("--status-port");
                opts.status_port = Some(v.parse().unwrap_or_else(|_| {
                    usage_err(&format!("--status-port expects a port number, got {v:?}"))
                }));
                // The status server snapshots this registry for
                // `/metrics`; a disabled one would serve an empty page,
                // so force it live even without --metrics.
                if !opts.obs.is_enabled() {
                    opts.obs = Registry::new();
                }
            }
            "--stall-ms" => {
                let v = value("--stall-ms");
                opts.stall_ms = v.parse().unwrap_or_else(|_| {
                    usage_err(&format!("--stall-ms expects milliseconds, got {v:?}"))
                });
            }
            "--max-retries" => {
                let v = value("--max-retries");
                opts.max_retries = v.parse().unwrap_or_else(|_| {
                    usage_err(&format!("--max-retries expects an integer, got {v:?}"))
                });
            }
            "--kill-at" => {
                let v = value("--kill-at");
                opts.kill_at = v
                    .split(',')
                    .map(|s| {
                        s.parse::<f64>()
                            .ok()
                            .filter(|f| f.is_finite() && *f >= 0.0)
                            .unwrap_or_else(|| {
                                usage_err(&format!("--kill-at expects fractions, got {s:?}"))
                            })
                    })
                    .collect();
            }
            "--stall-worker" => {
                let v = value("--stall-worker");
                let parsed = v
                    .split_once(':')
                    .and_then(|(i, a)| Some((i.parse::<usize>().ok()?, a.parse::<u32>().ok()?)));
                match parsed {
                    Some(p) => opts.stall_worker = Some(p),
                    None => usage_err(&format!("--stall-worker expects IDX:AFTER, got {v:?}")),
                }
            }
            "--verify" => verify = true,
            "--results" => results_path = PathBuf::from(value("--results")),
            other => usage_err(&format!("unknown flag {other}")),
        }
    }

    let report = run_or_exit("sweep service", run_supervisor(&opts));
    let p = &report.progress;
    eprintln!(
        "wcs-served: {} cells complete; {} spawns, {} kills observed, {} leases expired, \
         {} cells stolen, {} retries, {} merge conflicts; canonical journal at {} ({} records)",
        report.cells,
        p.worker_spawns.load(Ordering::Relaxed),
        p.worker_kills_observed.load(Ordering::Relaxed),
        p.worker_leases_expired.load(Ordering::Relaxed),
        p.worker_cells_stolen.load(Ordering::Relaxed),
        p.worker_retries.load(Ordering::Relaxed),
        p.worker_merge_conflicts.load(Ordering::Relaxed),
        report.canonical_journal.display(),
        report.merged_records,
    );
    print!("{}", report.render);

    if verify {
        let reference_journal = opts.dir.join("reference.journal");
        let reference_render = run_or_exit(
            "serial reference",
            run_serial_reference(opts.plan_cells, opts.seed, &reference_journal),
        );
        let canonical = run_or_exit(
            "read canonical journal",
            std::fs::read(&report.canonical_journal),
        );
        let reference = run_or_exit("read reference journal", std::fs::read(&reference_journal));
        let merge_diverged = canonical != reference;
        let resume_diverged = report.render != reference_render;
        let json = format!(
            "{{\n  \"workers\": {},\n  \"cells\": {},\n  \"kill_at\": {:?},\n  \
             \"worker_spawns\": {},\n  \"worker_kills_observed\": {},\n  \
             \"worker_leases_expired\": {},\n  \"worker_cells_stolen\": {},\n  \
             \"worker_retries\": {},\n  \"worker_merge_conflicts\": {},\n  \
             \"merged_records\": {},\n  \"merge_diverged\": {merge_diverged},\n  \
             \"resume_diverged\": {resume_diverged}\n}}\n",
            opts.workers,
            report.cells,
            opts.kill_at,
            p.worker_spawns.load(Ordering::Relaxed),
            p.worker_kills_observed.load(Ordering::Relaxed),
            p.worker_leases_expired.load(Ordering::Relaxed),
            p.worker_cells_stolen.load(Ordering::Relaxed),
            p.worker_retries.load(Ordering::Relaxed),
            p.worker_merge_conflicts.load(Ordering::Relaxed),
            report.merged_records,
        );
        run_or_exit(
            "write verification results",
            std::fs::write(&results_path, &json),
        );
        eprintln!("wcs-served: wrote {}", results_path.display());
        if merge_diverged || resume_diverged {
            eprintln!(
                "error: service diverged from the single-process reference \
                 (merge_diverged: {merge_diverged}, resume_diverged: {resume_diverged})"
            );
            std::process::exit(EXIT_ERROR);
        }
        eprintln!(
            "wcs-served: canonical journal and render byte-identical to the \
             single-process reference"
        );
    }

    args.write_metrics();
}
