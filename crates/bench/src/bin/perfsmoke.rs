//! Fixed-seed performance smoke test: times the workspace's main studies
//! and the event-queue hot path, verifies that memoized sweeps are
//! byte-identical to cold recomputation, measures the observability
//! layer's overhead in-process, then writes `BENCH_results.json` to the
//! current directory.
//!
//! All studies run with pinned seeds, so the *numbers* they produce are
//! identical run to run and across `--threads` values; only the wall
//! times vary — and the `cross_check` section proves it, evaluating one
//! design under every worker-thread count × scheduler kind × memo
//! setting and requiring byte-identical renders. The smoke also rates
//! the chunked SoA replay kernels (`perf.replay`: pages/sec and
//! blocks/sec) and scales the multi-process sweep service across worker
//! counts (1, 2, 4 processes, no chaos), folding the wall times into
//! the `service` section. Run with
//! `cargo run --release -p wcs-bench --bin perfsmoke [--threads N]`.

use std::fmt::Write as _;
use std::time::Instant;

use wcs_bench::cli::{self, run_or_exit};
use wcs_bench::service::{run_supervisor, ServiceOptions};
use wcs_core::evaluate::Evaluator;
use wcs_core::experiments::{cpu_study, memory_study_with, run_disk_study_with, unified_study};
use wcs_core::sweeps::{sweep_flash_capacity, sweep_local_fraction, sweep_platforms};
use wcs_core::DesignPoint;
use wcs_flashcache::system::StorageSystem;
use wcs_memshare::ensemble::{run_ensemble_pooled, ServerConfig};
use wcs_memshare::link::RemoteLink;
use wcs_memshare::policy::PolicyKind;
use wcs_memshare::twolevel::TwoLevelSim;
use wcs_platforms::storage::{DiskModel, FlashModel};
use wcs_platforms::PlatformId;
use wcs_simcore::faults::FaultProcess;
use wcs_simcore::obs::Registry;
use wcs_simcore::{EventQueue, QueueKind, SimDuration, SimRng, SimTime, ThreadPool};
use wcs_simserver::{
    Cluster, ClusterFaults, ResilienceConfig, Resource, RetryPolicy, ServerSpec, Stage,
};
use wcs_workloads::disktrace;
use wcs_workloads::memtrace::{params_for as mem_params, MemTraceBuf};
use wcs_workloads::perf::MeasureConfig;
use wcs_workloads::{ScenarioSpec, TrafficPack, WorkloadId};

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// The metric series folded into `BENCH_results.json`: at least one per
/// standard family, recorded by the memoized sweep bundle, the
/// obs-overhead study runs, and the resilience-overhead stage. Exact-class series are deterministic across
/// `--threads` and memo settings; the `memo.*` hit/miss counters are
/// wall-class profiling data.
const FOLDED_SERIES: [&str; 28] = [
    "queue.scheduled",
    "queue.fast_path",
    "queue.calendar_hits",
    "queue.heap_fallbacks",
    "queue.max_depth",
    "pool.tasks",
    "memo.storage.hits",
    "memo.replay.hits",
    "memo.perf.hits",
    "memo.perf.misses",
    "memo.scenario.hits",
    "memshare.replays",
    "memshare.page_faults",
    "memshare.cbf_saved_ns",
    "flashcache.replays",
    "flashcache.flash_hits",
    "flashcache.ftl_bytes_programmed",
    "cooling.throttle_events",
    "faults.retries",
    "faults.offered",
    "recovery.cells_replayed",
    "recovery.cells_journaled",
    "recovery.task_panics",
    "scenario.evals",
    "scenario.traffic_runs",
    "scenario.requests",
    "scenario.qos_violations",
    "resilience.requests",
];

/// The memoization-sensitive workload: every design-space sweep and
/// study the caches accelerate, rendered to one canonical string. Any
/// single-bit difference between memoized and cold runs shows up here.
fn sweep_bundle(eval: &Evaluator) -> String {
    let mut out = String::new();
    let local = sweep_local_fraction(eval, &[0.5, 0.25, 0.125]).expect("sweep evaluates");
    let flash = sweep_flash_capacity(eval, &[0.5, 1.0, 2.0]).expect("sweep evaluates");
    let platforms = sweep_platforms(eval).expect("sweep evaluates");
    let disk = run_disk_study_with(&MeasureConfig::quick(), eval.memo.storage());
    let memory = memory_study_with(0.25, eval.memo.replay());
    let _ = write!(
        out,
        "{local:?}\n{flash:?}\n{platforms:?}\n{disk:?}\n{memory:?}"
    );
    out
}

/// Push/pop one million uniformly-timed events on the given scheduler
/// and report (events, events/sec). Every kind pops the same total
/// order, so `sum` doubles as a cheap identity check across kinds.
fn event_queue_rate(kind: QueueKind) -> (u64, f64, u64) {
    const EVENTS: u64 = 1_000_000;
    let mut rng = SimRng::seed_from(97);
    let mut q = EventQueue::with_capacity_and_kind(EVENTS as usize, kind);
    let (sum, wall_ms) = timed(|| {
        for i in 0..EVENTS {
            q.schedule(SimTime::from_nanos(rng.next_u64() % 1_000_000_000), i);
        }
        let mut sum = 0u64;
        let mut order = 0u64;
        while let Some((t, e)) = q.pop() {
            sum = sum.wrapping_add(e).wrapping_add(order);
            order = order.wrapping_mul(31).wrapping_add(t.as_nanos());
        }
        sum
    });
    (2 * EVENTS, 2.0 * EVENTS as f64 / (wall_ms / 1e3), sum)
}

/// Rate the two chunked SoA replay kernels over fixed-seed materialized
/// traces: the two-level page kernel in pages/sec (dense store, lane
/// staging fanned over `pool`) and the flashcache block kernel in
/// blocks/sec. These feed `perf.replay` in the JSON and are gated
/// against the committed baseline in CI.
fn replay_kernel_rates(pool: &ThreadPool) -> (f64, f64) {
    const MEM_ACCESSES: usize = 2_000_000;
    let params = mem_params(WorkloadId::Websearch);
    let buf = MemTraceBuf::generate_par(params, 1, MEM_ACCESSES, pool);
    // 25% of the 2 GiB baseline locally — the paper's operating point.
    let mut sim =
        TwoLevelSim::with_page_universe(131_072, PolicyKind::Lru, 5, params.footprint_pages);
    let fill = (MEM_ACCESSES / 2) as u64;
    let _ = sim.par_replay(&buf, 0, fill, pool);
    let (stats, ms) = timed(|| sim.par_replay(&buf, MEM_ACCESSES / 2, fill, pool));
    let pages_per_sec = stats.accesses as f64 / (ms / 1e3);

    const DISK_REQUESTS: usize = 400_000;
    let dparams = disktrace::params_for(WorkloadId::Ytube);
    let trace = disktrace::materialize(dparams, 1, DISK_REQUESTS);
    let mut sys = StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
    let (_, ms) = timed(|| sys.replay_trace(dparams.request_blocks, &trace));
    let blocks_per_sec =
        (DISK_REQUESTS as u64 * u64::from(dparams.request_blocks)) as f64 / (ms / 1e3);
    (pages_per_sec, blocks_per_sec)
}

/// FNV-1a over a render, for reporting a compact checksum in the JSON.
fn fnv64(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325_u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// Byte-identity cross-check: evaluate the N2 design (every cache plus
/// the event engine in one cell) on a fresh evaluator under every
/// engine configuration — worker threads × scheduler kind × memoization
/// — and require all renders byte-identical. Any divergence aborts the
/// run before results are written. Restores the process default queue
/// kind to `args.queue` before returning.
fn engine_cross_check(args: &cli::BenchArgs) -> (usize, u64, f64) {
    let design = DesignPoint::n2();
    let mut reference: Option<(String, String)> = None;
    let mut configs = 0usize;
    let (_, wall_ms) = timed(|| {
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads).expect("positive thread count");
            for kind in QueueKind::ALL {
                wcs_simcore::event::set_default_queue_kind(kind);
                for memo in [true, false] {
                    let label = format!("threads={threads} queue={} memo={memo}", kind.as_str());
                    let e = args.build_evaluator(|b| {
                        b.quick().pool(pool).memo(memo).obs(Registry::disabled())
                    });
                    let render = format!("{:?}", e.evaluate(&design).expect("N2 evaluates"));
                    match &reference {
                        None => reference = Some((render, label)),
                        Some((want, base)) => assert_eq!(
                            want, &render,
                            "evaluation diverged between [{base}] and [{label}]"
                        ),
                    }
                    configs += 1;
                }
            }
        }
    });
    wcs_simcore::event::set_default_queue_kind(args.queue);
    let (render, _) = reference.expect("at least one config ran");
    (configs, fnv64(&render), wall_ms)
}

/// Scale the sweep service across worker-process counts (no chaos) and
/// report (workers, wall_ms, cells) per point.
fn service_scaling(seed: u64) -> Vec<(usize, f64, usize)> {
    let mut points = Vec::new();
    for workers in [1usize, 2, 4] {
        let dir = std::env::temp_dir().join(format!(
            "wcs-perfsmoke-service-{}-w{workers}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = ServiceOptions::new(workers);
        opts.seed = seed;
        opts.out = dir.join("canonical.journal");
        opts.dir = dir.clone();
        let (report, wall_ms) =
            timed(|| run_or_exit("sweep service scaling run", run_supervisor(&opts)));
        points.push((workers, wall_ms, report.cells));
        let _ = std::fs::remove_dir_all(&dir);
    }
    points
}

fn main() {
    wcs_bench::service::maybe_run_worker();
    let args = cli::parse();
    let pool = args.pool;
    let eval = args.build_evaluator(|b| b.quick());
    let mut studies: Vec<(&str, f64)> = Vec::new();

    let (_, ms) = timed(|| cpu_study(&eval).expect("catalog platforms evaluate"));
    studies.push(("cpu_study_quick", ms));

    let (_, ms) = timed(|| unified_study(&eval, PlatformId::Srvr1).expect("designs evaluate"));
    studies.push(("unified_study_quick", ms));

    let configs = vec![ServerConfig::paper_default(WorkloadId::Websearch); 16];
    let (_, ms) = timed(|| {
        run_ensemble_pooled(
            &configs,
            RemoteLink::pcie_x4(),
            PolicyKind::Random,
            300_000,
            7,
            pool,
        )
        .expect("non-empty ensemble")
    });
    studies.push(("ensemble_16_servers", ms));

    let cluster = Cluster::ideal(ServerSpec::new(2), 16).expect("non-empty cluster");
    let flap = FaultProcess::exponential(
        SimDuration::from_secs_f64(0.4),
        SimDuration::from_secs_f64(0.02),
    )
    .expect("positive rates");
    let plan = ClusterFaults::from_processes(&vec![flap; 16], SimDuration::from_secs_f64(5.0), 23);
    let retry = RetryPolicy::new(
        SimDuration::from_secs_f64(0.008),
        3,
        SimDuration::from_millis(2),
    )
    .expect("positive timeout");
    let mut source = |rng: &mut SimRng| {
        vec![Stage::new(
            Resource::Cpu,
            rng.exp_duration(SimDuration::from_micros(800)),
        )]
    };
    let (_, ms) = timed(|| {
        cluster
            .run_closed_loop_faulted(&mut source, 64, 2_000, 40_000, 17, &plan, &retry)
            .expect("valid run parameters")
    });
    studies.push(("cluster_faulted_40k", ms));

    // Event-queue hot path, once per scheduler kind. The pop-order
    // checksum must agree across kinds — the three lanes are required to
    // produce one total order.
    let mut queue_rates: Vec<(QueueKind, u64, f64)> = Vec::new();
    let mut pop_checksums: Vec<u64> = Vec::new();
    for kind in QueueKind::ALL {
        let (events, rate, checksum) = event_queue_rate(kind);
        queue_rates.push((kind, events, rate));
        pop_checksums.push(checksum);
    }
    assert!(
        pop_checksums.windows(2).all(|w| w[0] == w[1]),
        "queue kinds diverged on the microbench pop order: {pop_checksums:?}"
    );
    let events_per_sec = queue_rates
        .iter()
        .find(|(k, ..)| *k == args.queue)
        .map(|&(_, _, rate)| rate)
        .expect("selected kind was benchmarked");

    // Observability overhead: the unified study on a fresh evaluator per
    // run, disabled/enabled runs interleaved five times; the median of
    // each side rejects scheduler noise that best-of-two let through.
    // The same work runs either way — the only difference is whether the
    // exact metric exports hit a no-op handle or live atomics. Both the
    // absolute delta and the percentage are reported, so sub-millisecond
    // jitter on a fast study cannot read as a large ratio.
    const OBS_RUNS: usize = 5;
    let metrics_reg = Registry::new();
    let study_run = |obs: Registry| -> f64 {
        let e = args.build_evaluator(|b| b.obs(obs).quick());
        let (_, ms) = timed(|| unified_study(&e, PlatformId::Srvr1).expect("designs evaluate"));
        ms
    };
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let mut off_runs = Vec::with_capacity(OBS_RUNS);
    let mut on_runs = Vec::with_capacity(OBS_RUNS);
    for _ in 0..OBS_RUNS {
        off_runs.push(study_run(Registry::disabled()));
        on_runs.push(study_run(metrics_reg.clone()));
    }
    let obs_off_ms = median(off_runs);
    let obs_on_ms = median(on_runs);
    let obs_delta_ms = obs_on_ms - obs_off_ms;
    let obs_overhead_pct = obs_delta_ms / obs_off_ms * 100.0;

    // Resilience overhead: the fail-free cluster run with the layer
    // enabled but idle (admission sized far above offered load, no
    // faults to trip breakers or spend retries) against the plain
    // faulted path, interleaved. Each side keeps its *minimum* over
    // seven runs — the min is the run least perturbed by scheduler
    // noise, which at tens-of-milliseconds scale would otherwise
    // swamp a sub-2% comparison. The enabled-but-idle layer must be
    // behaviorally inert — identical completions and latency — and
    // cost < 2% wall clock (`within_gate` in the JSON).
    const RES_RUNS: usize = 7;
    const RES_MEASURED: u64 = 200_000;
    let fail_free = ClusterFaults::fail_free();
    let no_retry = RetryPolicy::none();
    let idle_config = ResilienceConfig::standard(50_000.0);
    let base_stats = cluster
        .run_closed_loop_faulted(
            &mut source,
            64,
            2_000,
            RES_MEASURED,
            17,
            &fail_free,
            &no_retry,
        )
        .expect("valid run parameters");
    let (idle_stats, idle_res) = cluster
        .run_closed_loop_resilient(
            &mut source,
            64,
            2_000,
            RES_MEASURED,
            17,
            &fail_free,
            &no_retry,
            &idle_config,
        )
        .expect("valid run parameters");
    assert_eq!(
        base_stats.completed, idle_stats.completed,
        "idle resilience changed completions"
    );
    assert_eq!(
        base_stats.latency.mean().to_bits(),
        idle_stats.latency.mean().to_bits(),
        "idle resilience changed latency"
    );
    assert_eq!(idle_res.breaker_trips, 0, "fail-free run tripped a breaker");
    assert_eq!(idle_res.shed(), 0, "idle admission shed work");
    metrics_reg
        .counter("resilience.requests")
        .add(idle_res.offered);
    let mut res_base_runs = Vec::with_capacity(RES_RUNS);
    let mut res_idle_runs = Vec::with_capacity(RES_RUNS);
    for _ in 0..RES_RUNS {
        let (_, ms) = timed(|| {
            cluster
                .run_closed_loop_faulted(
                    &mut source,
                    64,
                    2_000,
                    RES_MEASURED,
                    17,
                    &fail_free,
                    &no_retry,
                )
                .expect("valid run parameters")
        });
        res_base_runs.push(ms);
        let (_, ms) = timed(|| {
            cluster
                .run_closed_loop_resilient(
                    &mut source,
                    64,
                    2_000,
                    RES_MEASURED,
                    17,
                    &fail_free,
                    &no_retry,
                    &idle_config,
                )
                .expect("valid run parameters")
        });
        res_idle_runs.push(ms);
    }
    let minimum = |xs: Vec<f64>| -> f64 { xs.into_iter().fold(f64::INFINITY, f64::min) };
    let res_base_ms = minimum(res_base_runs);
    let res_idle_ms = minimum(res_idle_runs);
    let res_delta_ms = res_idle_ms - res_base_ms;
    let res_overhead_pct = res_delta_ms / res_base_ms * 100.0;
    let res_within_gate = res_overhead_pct < 2.0;

    // Memoization check: the full sweep bundle, cold (memo disabled),
    // then twice on one memoized evaluator (filling, then warm). All
    // three renders must be byte-identical — a divergence fails the run
    // (and CI) before any results are written. The memoized evaluator
    // records into `metrics_reg`, so the folded series below cover the
    // sweep bundle as well as the overhead study.
    let cold_eval = args.build_evaluator(|b| b.memo(false).obs(Registry::disabled()).quick());
    let (cold, sweep_cold_ms) = timed(|| sweep_bundle(&cold_eval));
    let memo_eval = args.build_evaluator(|b| b.obs(metrics_reg.clone()).quick());
    let (filling, _) = timed(|| sweep_bundle(&memo_eval));
    let (warm, sweep_warm_ms) = timed(|| sweep_bundle(&memo_eval));
    assert_eq!(
        cold, filling,
        "memoized sweep output diverged from cold recomputation"
    );
    assert_eq!(
        cold, warm,
        "warm (cached) sweep output diverged from cold recomputation"
    );
    let memo_stats = memo_eval.memo.stats();
    let speedup = sweep_cold_ms / sweep_warm_ms;

    // Scenario packs: both new workload families plus a paper workload
    // under a flash crowd, on the N2 design. The memoized run feeds the
    // scenario.* series folded below; the cold evaluator must render
    // byte-identically (same gate as the sweep bundle).
    let scenario_slate = [
        ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd()),
        ScenarioSpec::steady("dag-analytics").with_traffic(TrafficPack::diurnal()),
        ScenarioSpec::steady("websearch"),
    ];
    let n2 = DesignPoint::n2();
    let (scenario_evals, scenario_ms) = timed(|| {
        memo_eval
            .evaluate_scenarios(&n2, &scenario_slate)
            .expect("scenario slate evaluates")
    });
    let scenario_cold = cold_eval
        .evaluate_scenarios(&n2, &scenario_slate)
        .expect("scenario slate evaluates");
    assert_eq!(
        format!("{scenario_evals:?}"),
        format!("{scenario_cold:?}"),
        "scenario evaluation diverged between memoized and cold evaluators"
    );
    studies.push(("scenario_packs_n2", scenario_ms));
    let scenario_evals_per_sec = scenario_evals.len() as f64 / (scenario_ms / 1e3);

    memo_eval.export_obs();
    cli::ensure_standard_series(&metrics_reg);
    let snap = metrics_reg.snapshot();
    // The same-instant fast path must actually fire in real studies: the
    // batch engines schedule identical-service tasks at tied timestamps,
    // and the epoch buffer has to catch them (a zero here is the
    // regression the fast-path fix addressed).
    let fast_path = snap.count("queue.fast_path").unwrap_or(0);
    assert!(
        fast_path > 0,
        "queue.fast_path stayed zero across the sweep bundle — the \
         same-instant fast path never fired"
    );
    // The auto router must actually reach the calendar wheel at real
    // study depths — a zero here means the routing threshold regressed
    // back above the depths studies reach (dead routing).
    if args.queue != QueueKind::Heap {
        let calendar_hits = snap.count("queue.calendar_hits").unwrap_or(0);
        assert!(
            calendar_hits > 0,
            "queue.calendar_hits stayed zero across the sweep bundle with --queue {}",
            args.queue.as_str()
        );
    }

    let (replay_pages_per_sec, replay_blocks_per_sec) = replay_kernel_rates(&pool);
    let (cross_configs, cross_fnv, cross_ms) = engine_cross_check(&args);
    let service_points = service_scaling(args.seed.unwrap_or(42));

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"threads\": {},", pool.threads());
    json.push_str("  \"studies\": [\n");
    for (i, (name, wall_ms)) in studies.iter().enumerate() {
        let comma = if i + 1 < studies.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"wall_ms\": {wall_ms:.3}}}{comma}"
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"memo\": {{\"enabled\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
         \"sweep_cold_ms\": {sweep_cold_ms:.3}, \"sweep_warm_ms\": {sweep_warm_ms:.3}, \
         \"speedup\": {speedup:.2}, \"diverged\": false}},",
        memo_eval.memo.is_enabled(),
        memo_stats.hits,
        memo_stats.misses,
        memo_stats.hit_rate(),
    );
    let _ = writeln!(
        json,
        "  \"obs\": {{\"runs\": {OBS_RUNS}, \"disabled_ms\": {obs_off_ms:.3}, \
         \"enabled_ms\": {obs_on_ms:.3}, \"delta_ms\": {obs_delta_ms:.3}, \
         \"overhead_pct\": {obs_overhead_pct:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"resilience\": {{\"runs\": {RES_RUNS}, \"baseline_ms\": {res_base_ms:.3}, \
         \"idle_ms\": {res_idle_ms:.3}, \"delta_ms\": {res_delta_ms:.3}, \
         \"overhead_pct\": {res_overhead_pct:.3}, \"idle_identical\": true, \
         \"within_gate\": {res_within_gate}}},"
    );
    json.push_str("  \"metrics\": {\n");
    for (i, name) in FOLDED_SERIES.iter().enumerate() {
        let comma = if i + 1 < FOLDED_SERIES.len() { "," } else { "" };
        let value = snap.count(name).unwrap_or(0);
        let _ = writeln!(json, "    \"{name}\": {value}{comma}");
    }
    json.push_str("  },\n");
    json.push_str("  \"service\": [\n");
    for (i, (workers, wall_ms, cells)) in service_points.iter().enumerate() {
        let comma = if i + 1 < service_points.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"workers\": {workers}, \"wall_ms\": {wall_ms:.3}, \"cells\": {cells}}}{comma}"
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"event_queue\": [\n");
    for (i, (kind, events, rate)) in queue_rates.iter().enumerate() {
        let comma = if i + 1 < queue_rates.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"kind\": \"{}\", \"events\": {events}, \"events_per_sec\": {rate:.0}}}{comma}",
            kind.as_str()
        );
    }
    json.push_str("  ],\n");
    let scheduled = snap.count("queue.scheduled").unwrap_or(0);
    let fast_path_share = fast_path as f64 / scheduled.max(1) as f64;
    let _ = writeln!(
        json,
        "  \"perf\": {{\"queue_kind\": \"{}\", \"events_per_sec\": {events_per_sec:.0}, \
         \"sweep_cold_ms\": {sweep_cold_ms:.3}, \"sweep_warm_ms\": {sweep_warm_ms:.3}, \
         \"fast_path_share\": {fast_path_share:.4}, \
         \"scenario_evals_per_sec\": {scenario_evals_per_sec:.3}, \
         \"replay\": {{\"pages_per_sec\": {replay_pages_per_sec:.0}, \
         \"blocks_per_sec\": {replay_blocks_per_sec:.0}}}}},",
        args.queue.as_str()
    );
    let _ = writeln!(
        json,
        "  \"cross_check\": {{\"configs\": {cross_configs}, \
         \"render_fnv64\": \"{cross_fnv:#018x}\", \"wall_ms\": {cross_ms:.1}, \
         \"diverged\": false}}"
    );
    json.push_str("}\n");
    run_or_exit(
        "write BENCH_results.json",
        std::fs::write("BENCH_results.json", &json),
    );

    println!("perfsmoke ({} threads):", pool.threads());
    for (name, wall_ms) in &studies {
        println!("  {name:<22} {wall_ms:>10.1} ms");
    }
    for (kind, _, rate) in &queue_rates {
        println!("  event queue ({}): {rate:.2e} events/sec", kind.as_str());
    }
    for (workers, wall_ms, cells) in &service_points {
        println!("  service {cells} cells, {workers} worker(s): {wall_ms:>10.1} ms");
    }
    println!(
        "  replay kernels: twolevel {replay_pages_per_sec:.2e} pages/sec, \
         flashcache {replay_blocks_per_sec:.2e} blocks/sec"
    );
    println!(
        "  cross-check: {cross_configs} engine configs byte-identical \
         (fnv64 {cross_fnv:#018x}, {cross_ms:.0} ms)"
    );
    println!(
        "  obs overhead (median of {OBS_RUNS}): disabled {obs_off_ms:.1} ms, \
         enabled {obs_on_ms:.1} ms ({obs_delta_ms:+.2} ms, {obs_overhead_pct:+.2}%)"
    );
    println!(
        "  resilience idle overhead (min of {RES_RUNS}): baseline {res_base_ms:.1} ms, \
         enabled-idle {res_idle_ms:.1} ms ({res_delta_ms:+.2} ms, {res_overhead_pct:+.2}%, \
         gate<2% {})",
        if res_within_gate { "pass" } else { "FAIL" }
    );
    println!(
        "  memo sweep: cold {sweep_cold_ms:.1} ms, warm {sweep_warm_ms:.1} ms \
         ({speedup:.1}x, hit rate {:.1}%, byte-identical)",
        memo_stats.hit_rate() * 100.0
    );
    println!(
        "  scenario packs: {} evals in {scenario_ms:.1} ms \
         ({scenario_evals_per_sec:.1} evals/sec, memo==cold byte-identical)",
        scenario_evals.len()
    );

    // Honor --metrics like every other bench bin: the registry attached
    // to the studies' evaluator (enabled only when --metrics was given).
    eval.export_obs();
    args.write_metrics();
    println!("wrote BENCH_results.json");
}
