//! Regenerates Table 3 of the paper: flash/disk parameters (a) and the
//! disk-alternative efficiency study (b).
//!
//! Run with `cargo run --release -p wcs-bench --bin table3`.

use wcs_flashcache::memo::StorageMemo;
use wcs_flashcache::study::{run_disk_study_with, StorageScenario};
use wcs_platforms::storage::FlashModel;
use wcs_workloads::perf::MeasureConfig;

fn main() {
    // Accept the fleet-wide flags; this binary has no fan-out.
    let args = wcs_bench::cli::parse();
    println!("Table 3(a): flash and disk parameters");
    let flash = FlashModel::table3();
    println!(
        "  {:<12} {:>10} {:>22} {:>10} {:>8} {:>7}",
        "device", "bandwidth", "access time", "capacity", "power", "price"
    );
    println!(
        "  {:<12} {:>8} {:>22} {:>10} {:>8} {:>7}",
        "flash",
        format!("{} MB/s", flash.bandwidth_mbs),
        format!(
            "{}us r / {}us w / {}ms e",
            flash.read_us, flash.write_us, flash.erase_ms
        ),
        format!("{} GB", flash.capacity_gb),
        format!("{} W", flash.power_w),
        format!("${}", flash.price_usd)
    );
    for scenario in StorageScenario::all() {
        let d = &scenario.disk;
        println!(
            "  {:<12} {:>8} {:>22} {:>10} {:>8} {:>7}",
            d.name,
            format!("{} MB/s", d.bandwidth_mbs),
            format!("{} ms avg ({})", d.avg_access_ms, d.location),
            format!("{} GB", d.capacity_gb),
            format!("{} W", d.power_w),
            format!("${}", d.price_usd)
        );
    }

    println!("\nTable 3(b): net cost and power efficiencies on emb1 (HMean across suite)");
    println!(
        "  {:<28} {:>7} {:>12} {:>8} {:>12}",
        "disk type", "Perf", "Perf/Inf-$", "Perf/W", "Perf/TCO-$"
    );
    let memo = StorageMemo::with_enabled(args.memo).with_obs(args.obs.clone());
    for row in run_disk_study_with(&MeasureConfig::default_accuracy(), &memo) {
        println!(
            "  {:<28} {:>6.0}% {:>11.0}% {:>7.0}% {:>11.0}%",
            row.name,
            row.perf * 100.0,
            row.perf_per_inf * 100.0,
            row.perf_per_watt * 100.0,
            row.perf_per_tco * 100.0
        );
    }
    println!("  (paper: laptop 93/100/96; +flash 99/109/104; laptop-2+flash 110/109/110)");
    args.write_metrics();
}
