//! Regenerates Figure 5 of the paper: cost and power efficiencies of the
//! two unified designs (N1, N2) relative to the srvr1 baseline, plus the
//! Section 3.6 comparisons against srvr2 and desk.
//!
//! Run with `cargo run --release -p wcs-bench --bin fig5`
//! (add `-- srvr2` or `-- desk` for the alternate baselines).

use wcs_core::designs::DesignPoint;
use wcs_core::report::render_comparison;
use wcs_platforms::PlatformId;

fn main() {
    let args = wcs_bench::cli::parse();
    let arg = args.rest.first().cloned().unwrap_or_else(|| "srvr1".into());
    let baseline_id = match arg.as_str() {
        "srvr1" => PlatformId::Srvr1,
        "srvr2" => PlatformId::Srvr2,
        "desk" => PlatformId::Desk,
        other => {
            eprintln!("unknown baseline {other}; use srvr1, srvr2, or desk");
            std::process::exit(2);
        }
    };

    let eval = args
        .eval_builder()
        .build()
        .expect("paper profile configuration is valid");
    let baseline = eval
        .evaluate(&DesignPoint::baseline(baseline_id))
        .expect("baseline evaluates");

    for design in [DesignPoint::n1(), DesignPoint::n2()] {
        let e = eval.evaluate(&design).expect("design evaluates");
        println!("{}", render_comparison(&e.compare(&baseline)));
        println!(
            "  ({}: {} systems/rack, {:.0} W/server nameplate, ${:.0} HW)",
            e.name,
            e.systems_per_rack,
            e.report.power_w(),
            e.report.inf_usd()
        );
        println!();
    }
    eval.export_obs();
    args.write_metrics();
}
