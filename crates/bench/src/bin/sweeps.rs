//! Design-space sweeps on top of the paper's framework: local-memory
//! fraction, flash capacity, and the platform axis.
//!
//! Run with `cargo run --release -p wcs-bench --bin sweeps`.

use wcs_bench::cli::run_or_exit;
use wcs_core::sweeps::{sweep_flash_capacity, sweep_local_fraction, sweep_platforms};

fn main() {
    let args = wcs_bench::cli::parse();
    let eval = args.build_evaluator(|b| b.quick());

    println!("Sweep: N2 local-memory fraction (HMean Perf/TCO-$ vs srvr1)");
    let sweep = run_or_exit(
        "local-memory fraction sweep",
        sweep_local_fraction(&eval, &[0.5, 0.25, 0.125, 0.0625]),
    );
    for (f, tco) in sweep.tco_curve() {
        println!("  local {:>5.1}%  ->  {:>4.0}%", f * 100.0, tco * 100.0);
    }
    if let Some(best) = sweep.best() {
        println!("  best: {}", best.label);
    }

    println!("\nSweep: N2 flash capacity (HMean Perf/TCO-$ vs srvr1)");
    let sweep = run_or_exit(
        "flash capacity sweep",
        sweep_flash_capacity(&eval, &[0.25, 0.5, 1.0, 2.0, 4.0]),
    );
    for (gb, tco) in sweep.tco_curve() {
        println!("  {gb:>5} GB  ->  {:>4.0}%", tco * 100.0);
    }

    println!("\nSweep: baseline platforms (HMean Perf/TCO-$ vs srvr1)");
    let sweep = run_or_exit("platform sweep", sweep_platforms(&eval));
    for p in &sweep.points {
        let tco = p.eval.compare(&sweep.baseline).hmean(|r| r.perf_per_tco);
        println!("  {:<7} ->  {:>4.0}%", p.label, tco * 100.0);
    }
    eval.export_obs();
    args.write_metrics();
}
