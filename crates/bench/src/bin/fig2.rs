//! Regenerates Figure 2 of the paper: cost/power breakdowns per platform
//! (a, b) and the relative performance / efficiency grid (c).
//!
//! Run with `cargo run --release -p wcs-bench --bin fig2 [--threads N]`.

use wcs_bench::cli;
use wcs_platforms::{catalog, Component, PlatformId};
use wcs_simcore::event::QueueObs;
use wcs_simcore::stats::harmonic_mean;
use wcs_tco::{Efficiency, TcoModel};
use wcs_workloads::perf::{measure_perf, MeasureConfig};
use wcs_workloads::{suite, WorkloadId};

fn main() {
    let args = cli::parse();
    let pool = args.pool;
    let model = TcoModel::paper_default();
    let platforms = catalog::all();

    println!("Figure 2(a): infrastructure cost breakdown per server ($)");
    print!("{:<12}", "component");
    for p in &platforms {
        print!("{:>9}", p.name);
    }
    println!();
    for c in [
        Component::Cpu,
        Component::Memory,
        Component::Disk,
        Component::BoardMgmt,
        Component::PowerFans,
        Component::RackSwitch,
    ] {
        print!("{:<12}", c.to_string());
        for p in &platforms {
            let r = model.server_tco(p);
            print!("{:>9.0}", r.line(c).map_or(0.0, |l| l.hw_usd));
        }
        println!();
    }

    println!("\nFigure 2(b): burdened 3-yr P&C cost breakdown per server ($)");
    print!("{:<12}", "component");
    for p in &platforms {
        print!("{:>9}", p.name);
    }
    println!();
    for c in [
        Component::Cpu,
        Component::Memory,
        Component::Disk,
        Component::BoardMgmt,
        Component::PowerFans,
        Component::RackSwitch,
    ] {
        print!("{:<12}", c.to_string());
        for p in &platforms {
            let r = model.server_tco(p);
            print!("{:>9.0}", r.line(c).map_or(0.0, |l| l.pc_usd));
        }
        println!();
    }

    println!("\nFigure 2(c): performance and efficiencies relative to srvr1 (%)");
    let cfg = MeasureConfig::default_accuracy();
    let ids = [
        PlatformId::Srvr1,
        PlatformId::Srvr2,
        PlatformId::Desk,
        PlatformId::Mobl,
        PlatformId::Emb1,
        PlatformId::Emb2,
    ];

    // perf[workload][platform]: the 30 (workload, platform) measurements
    // are independent, so fan the whole grid out at once. Each cell's
    // seed comes from the shared MeasureConfig, never from order.
    let cells: Vec<(WorkloadId, PlatformId)> = WorkloadId::ALL
        .iter()
        .flat_map(|&w| ids.iter().map(move |&id| (w, id)))
        .collect();
    let results = pool.par_map(&cells, |_, &(w, id)| {
        measure_perf(&suite::workload(w), &catalog::platform(id), &cfg)
    });
    // Queue occupancy is summed from the returned measurements in input
    // order, so the recorded series is identical at any --threads value.
    let mut queue = QueueObs::default();
    let values: Vec<f64> = results
        .into_iter()
        .map(|r| match r {
            Ok(r) => {
                queue = queue.merged(&r.queue);
                r.value
            }
            Err(_) => f64::NAN,
        })
        .collect();
    queue.export(&args.obs);
    args.obs.counter("pool.tasks").add(cells.len() as u64);
    let perf: Vec<Vec<f64>> = values.chunks(ids.len()).map(<[f64]>::to_vec).collect();

    for (metric, f) in [
        ("Perf", 0usize),
        ("Perf/Inf-$", 1),
        ("Perf/W", 2),
        ("Perf/TCO-$", 3),
    ] {
        println!("\n  {metric}");
        print!("  {:<12}", "workload");
        for id in &ids[1..] {
            print!("{:>8}", id.label());
        }
        println!();
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); ids.len() - 1];
        for (wi, w) in WorkloadId::ALL.iter().enumerate() {
            print!("  {:<12}", w.label());
            let base = Efficiency::new(perf[wi][0], model.server_tco(&catalog::platform(ids[0])));
            for (pi, &id) in ids[1..].iter().enumerate() {
                let e = Efficiency::new(perf[wi][pi + 1], model.server_tco(&catalog::platform(id)));
                let rel = e.relative_to(&base);
                let v = match f {
                    0 => rel.perf,
                    1 => rel.perf_per_inf,
                    2 => rel.perf_per_watt,
                    _ => rel.perf_per_tco,
                };
                cols[pi].push(v);
                print!("{:>8.0}", v * 100.0);
            }
            println!();
        }
        print!("  {:<12}", "HMean");
        for col in &cols {
            let h = harmonic_mean(col).unwrap_or(f64::NAN);
            print!("{:>8.0}", h * 100.0);
        }
        println!();
    }
    args.write_metrics();
}
