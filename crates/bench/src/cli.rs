//! Shared command-line handling for the bench binaries.
//!
//! Every binary accepts `--threads N` (or `--threads=N`), defaulting to
//! the machine's available parallelism, and `--no-memo`, which disables
//! the sub-simulation result caches. Neither flag affects results —
//! every parallel fan-out seeds its tasks purely from the task index,
//! and every memoized value is a pure function of its key — so both are
//! wall-clock dials, not reproducibility hazards.

use std::process::exit;

use wcs_simcore::ThreadPool;

/// Parsed common arguments: the worker pool plus whatever the binary
/// defines for itself.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Worker pool sized by `--threads` (default: available parallelism).
    pub pool: ThreadPool,
    /// Whether sub-simulation memoization is enabled (default) or
    /// disabled by `--no-memo`.
    pub memo: bool,
    /// Positional/unrecognized arguments, in order, for the binary's own
    /// parsing (e.g. `fig5`'s baseline platform).
    pub rest: Vec<String>,
}

/// Parses `std::env::args()`, exiting with status 2 on a malformed
/// `--threads` value.
pub fn parse() -> BenchArgs {
    parse_from(std::env::args().skip(1))
}

/// Parses an explicit argument stream (testable form of [`parse`]).
///
/// # Errors
/// Returns a message describing the malformed `--threads` usage.
pub fn try_parse_from(args: impl Iterator<Item = String>) -> Result<BenchArgs, String> {
    let mut pool = ThreadPool::available();
    let mut memo = true;
    let mut rest = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--no-memo" {
            memo = false;
            continue;
        }
        let value = if arg == "--threads" {
            Some(args.next().ok_or("--threads requires a value")?)
        } else {
            arg.strip_prefix("--threads=").map(str::to_owned)
        };
        match value {
            Some(v) => {
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads expects a positive integer, got {v:?}"))?;
                pool = ThreadPool::new(n).map_err(|e| e.to_string())?;
            }
            None => rest.push(arg),
        }
    }
    Ok(BenchArgs { pool, memo, rest })
}

fn parse_from(args: impl Iterator<Item = String>) -> BenchArgs {
    match try_parse_from(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: <bin> [--threads N] [--no-memo] [args...]");
            exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn defaults_to_available_parallelism() {
        let a = try_parse_from(strs(&[])).unwrap();
        assert_eq!(a.pool, ThreadPool::available());
        assert!(a.memo, "memoization defaults on");
        assert!(a.rest.is_empty());
    }

    #[test]
    fn no_memo_flag_disables_memoization() {
        let a = try_parse_from(strs(&["--no-memo"])).unwrap();
        assert!(!a.memo);
        assert!(a.rest.is_empty());
        let b = try_parse_from(strs(&["desk", "--no-memo", "--threads=2"])).unwrap();
        assert!(!b.memo);
        assert_eq!(b.rest, vec!["desk".to_owned()]);
    }

    #[test]
    fn parses_both_flag_forms() {
        let a = try_parse_from(strs(&["--threads", "3"])).unwrap();
        assert_eq!(a.pool.threads(), 3);
        let b = try_parse_from(strs(&["--threads=8"])).unwrap();
        assert_eq!(b.pool.threads(), 8);
    }

    #[test]
    fn keeps_positional_args_in_order() {
        let a = try_parse_from(strs(&["desk", "--threads", "2", "extra"])).unwrap();
        assert_eq!(a.pool.threads(), 2);
        assert_eq!(a.rest, vec!["desk".to_owned(), "extra".to_owned()]);
    }

    #[test]
    fn rejects_bad_thread_counts() {
        assert!(try_parse_from(strs(&["--threads", "zero"])).is_err());
        assert!(try_parse_from(strs(&["--threads", "0"])).is_err());
        assert!(try_parse_from(strs(&["--threads"])).is_err());
    }
}
