//! Shared command-line handling for the bench binaries.
//!
//! Every binary accepts the same flag cluster from this one parser —
//! there is no per-bin flag handling:
//!
//! * `--threads N` (or `--threads=N`) sizes the worker pool, defaulting
//!   to the machine's available parallelism.
//! * `--no-memo` disables the sub-simulation result caches.
//! * `--seed S` overrides the base RNG seed of every evaluation built
//!   through [`BenchArgs::eval_builder`].
//! * `--metrics PATH` enables the observability layer and writes a
//!   snapshot of every recorded series when the binary calls
//!   [`BenchArgs::write_metrics`]: JSON by default, Prometheus text
//!   exposition when `PATH` ends in `.prom`, JSON on stdout for `-`.
//! * `--resume PATH` opens (creating if absent) the crash-safety journal
//!   at `PATH`: previously completed sweep cells are replayed into the
//!   memo instead of recomputed, and newly computed cells are appended.
//! * `--task-budget-ms N` arms the watchdog: any sweep cell running
//!   longer than `N` wall-clock milliseconds is cancelled cooperatively
//!   and reported as a degraded cell instead of stalling the run.
//! * `--queue {heap,calendar,auto}` selects the event-queue scheduler
//!   for every simulation in the process: the 4-ary heap, the calendar
//!   wheel, or occupancy-based selection (the default). All three pop
//!   the same total order, so this is an A/B performance dial, not a
//!   results dial.
//! * `--scenario NAME` narrows scenario-aware binaries to one registered
//!   workload (paper suite, `faas`, `dag-analytics`, or anything
//!   registered at startup). An unknown name is a usage error (exit 2)
//!   whose message lists every registered scenario.
//! * `--traffic PACK` selects the arrival process for scenario runs:
//!   `steady` (default), `diurnal`, `flash-crowd`, or `failover-surge`.
//! * `--resilience` arms the standard resilience layer for scenario
//!   runs: token-bucket admission control, a 10% retry budget, circuit
//!   breakers, and a seeded chaos wave that co-varies blade faults with
//!   the traffic profile.
//! * `--retry-budget RATIO` overrides the retry-budget accrual ratio
//!   (and implies `--resilience`).
//!
//! None of the flags can change results. Parallel fan-outs seed their
//! tasks purely from the task index, memoized values are pure functions
//! of their keys, journal replay seeds the memo with bit-identical
//! payloads, and every exact-class metric is recorded from returned
//! simulation values — so `--threads`, `--no-memo`, `--metrics`, and
//! `--resume` are wall-clock and reporting dials, not reproducibility
//! hazards. (`--task-budget-ms` is the one exception: deadlines are
//! wall-clock, so a fired deadline degrades a cell nondeterministically —
//! use generous budgets for runs that must be bit-identical.)

//! # Exit-code convention
//!
//! Every bench binary (and every worker process `wcs-served` spawns)
//! uses the same exit codes, so supervisors and CI can tell outcomes
//! apart without parsing stderr:
//!
//! | code | meaning |
//! |------|---------|
//! | [`EXIT_OK`] (0)       | completed normally |
//! | [`EXIT_ERROR`] (1)    | runtime failure (evaluation error, unwritable output, divergence) |
//! | [`EXIT_USAGE`] (2)    | malformed command line |
//! | [`EXIT_GRACEFUL`] (3) | clean early shutdown: a service worker saw its stdin close (supervisor death or explicit drain), sealed its journal, and left — no torn tail, nothing lost |
//!
//! Anything else (or a signal death, which has no code on Unix) is a
//! crash; the sweep-service journal tolerates those by construction.

use std::fmt::Display;
use std::process::exit;

use wcs_core::evaluate::EvalBuilder;
use wcs_core::{Evaluator, ResilienceSpec, WcsError};
use wcs_simcore::obs::Registry;
use wcs_simcore::{QueueKind, ThreadPool};
use wcs_workloads::registry;
use wcs_workloads::{ScenarioSpec, TrafficPack};

/// The run completed normally.
pub const EXIT_OK: i32 = 0;
/// A runtime failure: evaluation error, unwritable output, divergence.
pub const EXIT_ERROR: i32 = 1;
/// A malformed command line.
pub const EXIT_USAGE: i32 = 2;
/// A clean early shutdown (service workers: stdin closed, journal
/// sealed). Distinct from [`EXIT_ERROR`] so the supervisor can tell a
/// drained worker from a crashed one.
pub const EXIT_GRACEFUL: i32 = 3;

/// Unwraps `result` or prints `error: <context>: <cause>` and exits with
/// [`EXIT_ERROR`]. The one error boundary every bench binary shares —
/// per-bin `.expect(..)` panics (which exit 101 and print a backtrace
/// pointing at the binary, not the cause) are replaced by this.
pub fn run_or_exit<T, E: Display>(context: &str, result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {context}: {e}");
            exit(EXIT_ERROR);
        }
    }
}

/// The metric families every bench binary's `--metrics` export carries.
/// [`ensure_standard_series`] registers one canonical series per family
/// so consumers can rely on the keys being present; a zero value means
/// the subsystem did not run in that binary.
pub const STANDARD_FAMILIES: [&str; 10] = [
    "queue",
    "pool",
    "memo",
    "memshare",
    "flashcache",
    "cooling",
    "faults",
    "recovery",
    "scenario",
    "resilience",
];

/// Parsed common arguments: the worker pool plus whatever the binary
/// defines for itself.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Worker pool sized by `--threads` (default: available parallelism).
    pub pool: ThreadPool,
    /// Whether sub-simulation memoization is enabled (default) or
    /// disabled by `--no-memo`.
    pub memo: bool,
    /// Destination of the metrics snapshot (`--metrics PATH`), if any.
    pub metrics: Option<String>,
    /// Base RNG seed override (`--seed S`), if any.
    pub seed: Option<u64>,
    /// Crash-safety journal path (`--resume PATH`), if any. Completed
    /// cells recorded there are replayed instead of recomputed, and new
    /// cells are appended as they finish.
    pub resume: Option<String>,
    /// Per-cell watchdog budget in milliseconds (`--task-budget-ms N`),
    /// if any. Cells exceeding it are cancelled cooperatively and
    /// reported as degraded.
    pub task_budget_ms: Option<u64>,
    /// Event-queue scheduler selected by `--queue` (default:
    /// [`QueueKind::Auto`]). [`parse`] installs it as the process-wide
    /// default before any simulation constructs a queue.
    pub queue: QueueKind,
    /// Registered workload selected by `--scenario NAME`, if any. The
    /// name was validated against the registry at parse time.
    pub scenario: Option<String>,
    /// Traffic pack selected by `--traffic PACK`, if any.
    pub traffic: Option<TrafficPack>,
    /// Resilience layer armed by `--resilience` / `--retry-budget`, if
    /// any. Applied to every evaluator built through
    /// [`BenchArgs::eval_builder`].
    pub resilience: Option<ResilienceSpec>,
    /// The metrics registry: enabled iff `--metrics` was passed,
    /// otherwise the disabled no-op registry.
    pub obs: Registry,
    /// Positional/unrecognized arguments, in order, for the binary's own
    /// parsing (e.g. `fig5`'s baseline platform).
    pub rest: Vec<String>,
}

impl BenchArgs {
    /// An [`EvalBuilder`] with this command line applied: pool, memo,
    /// observability registry, seed override, resume journal, and
    /// watchdog budget. Binaries layer their own profile on top
    /// (`.quick()`, `.faults(..)`, ...) and `build()`.
    pub fn eval_builder(&self) -> EvalBuilder {
        let mut b = Evaluator::builder()
            .pool(self.pool)
            .memo(self.memo)
            .obs(self.obs.clone());
        if let Some(seed) = self.seed {
            b = b.seed(seed);
        }
        if let Some(path) = &self.resume {
            b = b.resume(path);
        }
        if let Some(ms) = self.task_budget_ms {
            b = b.task_budget(std::time::Duration::from_millis(ms));
        }
        if let Some(rs) = self.resilience {
            b = b.resilience(rs);
        }
        b
    }

    /// Builds the evaluator from [`eval_builder`](Self::eval_builder)
    /// after applying `profile`, exiting with status 1 on failure (an
    /// unreadable `--resume` journal is the common cause) instead of
    /// panicking. Binaries call this as their one construction point.
    pub fn build_evaluator(&self, profile: impl FnOnce(EvalBuilder) -> EvalBuilder) -> Evaluator {
        match profile(self.eval_builder()).build() {
            Ok(eval) => eval,
            Err(e) => {
                eprintln!("error: cannot construct evaluator: {e}");
                exit(EXIT_ERROR);
            }
        }
    }

    /// The scenario slate this command line selects from a binary's
    /// `default` slate:
    ///
    /// * `--scenario NAME` narrows to that one workload (under
    ///   `--traffic`, or steady when the flag is absent),
    /// * `--traffic PACK` alone re-runs the default slate's distinct
    ///   workloads, each under `PACK`,
    /// * neither flag runs `default` unchanged.
    pub fn scenario_specs(&self, default: &[ScenarioSpec]) -> Vec<ScenarioSpec> {
        match (&self.scenario, self.traffic) {
            (Some(name), pack) => {
                vec![ScenarioSpec::steady(name).with_traffic(pack.unwrap_or(TrafficPack::Steady))]
            }
            (None, Some(pack)) => {
                let mut specs: Vec<ScenarioSpec> = Vec::new();
                for spec in default {
                    if !specs.iter().any(|s| s.workload == spec.workload) {
                        specs.push(ScenarioSpec {
                            workload: spec.workload,
                            traffic: pack,
                        });
                    }
                }
                specs
            }
            (None, None) => default.to_vec(),
        }
    }

    /// Writes the metrics snapshot to the `--metrics` destination, if
    /// one was requested: JSON by default, Prometheus text when the path
    /// ends in `.prom`, JSON on stdout for `-`. Call once, at the end of
    /// `main`, after [`Evaluator::export_obs`] / any end-of-run exports.
    ///
    /// Every standard family is registered before the snapshot, so the
    /// export always contains the `queue`, `pool`, `memo`, `memshare`,
    /// `flashcache`, `cooling`, `faults`, and `recovery` series.
    pub fn write_metrics(&self) {
        let Some(path) = &self.metrics else {
            return;
        };
        ensure_standard_series(&self.obs);
        let snap = self.obs.snapshot();
        if path == "-" {
            print!("{}", snap.to_json());
            return;
        }
        let body = if path.ends_with(".prom") {
            snap.to_prometheus()
        } else {
            snap.to_json()
        };
        match std::fs::write(path, body) {
            Ok(()) => eprintln!("wrote metrics to {path}"),
            Err(e) => {
                eprintln!("error: cannot write metrics to {path}: {e}");
                exit(EXIT_ERROR);
            }
        }
    }
}

/// Registers one canonical series from each [`STANDARD_FAMILIES`] family
/// (kind-compatible with the real recorders), so that a snapshot always
/// carries every family even when a binary exercises only some
/// subsystems. Zero means "subsystem did not run", absent means "binary
/// predates the obs layer".
pub fn ensure_standard_series(registry: &Registry) {
    if !registry.is_enabled() {
        return;
    }
    for name in [
        "queue.scheduled",
        "queue.fast_path",
        "queue.calendar_hits",
        "queue.heap_fallbacks",
    ] {
        registry.counter(name).add(0);
    }
    registry.max_gauge("queue.max_depth").observe(0);
    registry.counter("pool.tasks").add(0);
    for domain in ["storage", "replay", "perf", "scenario"] {
        registry.wall_counter(&format!("memo.{domain}.hits")).add(0);
        registry
            .wall_counter(&format!("memo.{domain}.misses"))
            .add(0);
    }
    for name in [
        "memshare.replays",
        "memshare.accesses",
        "memshare.page_faults",
        "memshare.writebacks",
        "memshare.cbf_saved_ns",
        "flashcache.replays",
        "flashcache.requests",
        "flashcache.flash_hits",
        "flashcache.background_bytes",
        "flashcache.ftl_bytes_programmed",
        "flashcache.ftl_erases",
        "cooling.throttle_events",
        "cooling.fan_failures",
        "faults.timeouts",
        "faults.retries",
        "faults.dropped",
        "faults.offered",
        "recovery.cells_replayed",
        "recovery.cells_journaled",
        "recovery.resume_hits",
        "recovery.task_panics",
        "recovery.task_retries",
        "recovery.plan_skipped",
        "recovery.worker_spawns",
        "recovery.worker_kills_observed",
        "recovery.worker_leases_expired",
        "recovery.worker_cells_stolen",
        "recovery.worker_merge_conflicts",
        "recovery.worker_retries",
        "scenario.evals",
        "scenario.traffic_runs",
        "scenario.requests",
        "scenario.qos_violations",
        "scenario.faas_resident",
        "scenario.dag_tasks",
        "scenario.dag_stragglers",
        "resilience.runs",
        "resilience.requests",
        "resilience.shed",
        "resilience.retries_spent",
        "resilience.retries_denied",
        "resilience.breaker_trips",
        "resilience.fast_fails",
    ] {
        registry.counter(name).add(0);
    }
    // Wall-class recovery series: deadlines and journal damage are
    // wall-clock phenomena, so they live outside the deterministic set.
    for name in [
        "recovery.deadline_cancels",
        "recovery.journal_errors",
        "recovery.journal_truncated_bytes",
    ] {
        registry.wall_counter(name).add(0);
    }
}

/// Parses `std::env::args()`, exiting with status 2 on a malformed
/// command line. Installs the parsed `--queue` kind as the process-wide
/// event-queue default, so every simulation the binary runs uses it.
pub fn parse() -> BenchArgs {
    let args = parse_from(std::env::args().skip(1));
    wcs_simcore::event::set_default_queue_kind(args.queue);
    args
}

/// Parses an explicit argument stream (testable form of [`parse`]).
///
/// # Errors
/// Returns a [`WcsError::Cli`] describing the malformed flag.
pub fn try_parse_from(args: impl Iterator<Item = String>) -> Result<BenchArgs, WcsError> {
    let mut pool = ThreadPool::available();
    let mut memo = true;
    let mut metrics = None;
    let mut seed = None;
    let mut resume = None;
    let mut task_budget_ms = None;
    let mut queue = QueueKind::default();
    let mut scenario = None;
    let mut traffic = None;
    let mut resilience = false;
    let mut retry_budget = None;
    let mut rest = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--no-memo" {
            memo = false;
            continue;
        }
        if arg == "--resilience" {
            resilience = true;
            continue;
        }
        // `--flag value` and `--flag=value` are both accepted for every
        // valued flag.
        let mut valued = |flag: &str| -> Result<Option<String>, WcsError> {
            if arg == flag {
                return args
                    .next()
                    .map(Some)
                    .ok_or_else(|| WcsError::Cli(format!("{flag} requires a value")));
            }
            Ok(arg
                .strip_prefix(flag)
                .and_then(|r| r.strip_prefix('='))
                .map(str::to_owned))
        };
        if let Some(v) = valued("--threads")? {
            let n: usize = v.parse().map_err(|_| {
                WcsError::Cli(format!("--threads expects a positive integer, got {v:?}"))
            })?;
            pool = ThreadPool::new(n).map_err(WcsError::from)?;
        } else if let Some(v) = valued("--seed")? {
            let s: u64 = v
                .parse()
                .map_err(|_| WcsError::Cli(format!("--seed expects an integer, got {v:?}")))?;
            seed = Some(s);
        } else if let Some(v) = valued("--metrics")? {
            metrics = Some(v);
        } else if let Some(v) = valued("--resume")? {
            resume = Some(v);
        } else if let Some(v) = valued("--task-budget-ms")? {
            let ms: u64 = v.parse().map_err(|_| {
                WcsError::Cli(format!(
                    "--task-budget-ms expects a positive integer, got {v:?}"
                ))
            })?;
            if ms == 0 {
                return Err(WcsError::Cli(
                    "--task-budget-ms must be positive (every cell would be cancelled)".to_owned(),
                ));
            }
            task_budget_ms = Some(ms);
        } else if let Some(v) = valued("--queue")? {
            queue = QueueKind::parse(&v).ok_or_else(|| {
                WcsError::Cli(format!(
                    "--queue expects one of heap, calendar, auto; got {v:?}"
                ))
            })?;
        } else if let Some(v) = valued("--scenario")? {
            if !registry::contains(&v) {
                return Err(WcsError::UnknownScenario {
                    name: v,
                    known: registry::names(),
                });
            }
            scenario = Some(v);
        } else if let Some(v) = valued("--traffic")? {
            traffic = Some(TrafficPack::parse(&v).ok_or_else(|| {
                WcsError::Cli(format!(
                    "--traffic expects one of {}; got {v:?}",
                    TrafficPack::NAMES.join(", ")
                ))
            })?);
        } else if let Some(v) = valued("--retry-budget")? {
            let ratio: f64 = v
                .parse()
                .map_err(|_| WcsError::Cli(format!("--retry-budget expects a ratio, got {v:?}")))?;
            if !(ratio.is_finite() && ratio > 0.0) {
                return Err(WcsError::Cli(format!(
                    "--retry-budget must be a positive finite ratio, got {v:?}"
                )));
            }
            retry_budget = Some(ratio);
        } else {
            rest.push(arg);
        }
    }
    // `--retry-budget` implies the standard layer with the ratio
    // overridden; `--resilience` alone uses the standard layer as-is.
    let resilience = match (resilience, retry_budget) {
        (_, Some(ratio)) => Some(ResilienceSpec::standard().with_retry_ratio(ratio)),
        (true, None) => Some(ResilienceSpec::standard()),
        (false, None) => None,
    };
    let obs = Registry::with_enabled(metrics.is_some());
    Ok(BenchArgs {
        pool,
        memo,
        metrics,
        seed,
        resume,
        task_budget_ms,
        queue,
        scenario,
        traffic,
        resilience,
        obs,
        rest,
    })
}

fn parse_from(args: impl Iterator<Item = String>) -> BenchArgs {
    match try_parse_from(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: <bin> [--threads N] [--no-memo] [--seed S] [--metrics PATH] \
                 [--resume JOURNAL] [--task-budget-ms N] [--queue heap|calendar|auto] \
                 [--scenario NAME] [--traffic steady|diurnal|flash-crowd|failover-surge] \
                 [--resilience] [--retry-budget RATIO] [args...]"
            );
            exit(EXIT_USAGE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn defaults_to_available_parallelism() {
        let a = try_parse_from(strs(&[])).unwrap();
        assert_eq!(a.pool, ThreadPool::available());
        assert!(a.memo, "memoization defaults on");
        assert!(a.metrics.is_none());
        assert!(a.seed.is_none());
        assert!(!a.obs.is_enabled(), "obs stays disabled without --metrics");
        assert!(a.rest.is_empty());
    }

    #[test]
    fn no_memo_flag_disables_memoization() {
        let a = try_parse_from(strs(&["--no-memo"])).unwrap();
        assert!(!a.memo);
        assert!(a.rest.is_empty());
        let b = try_parse_from(strs(&["desk", "--no-memo", "--threads=2"])).unwrap();
        assert!(!b.memo);
        assert_eq!(b.rest, vec!["desk".to_owned()]);
    }

    #[test]
    fn parses_both_flag_forms() {
        let a = try_parse_from(strs(&["--threads", "3"])).unwrap();
        assert_eq!(a.pool.threads(), 3);
        let b = try_parse_from(strs(&["--threads=8"])).unwrap();
        assert_eq!(b.pool.threads(), 8);
    }

    #[test]
    fn metrics_flag_enables_obs() {
        let a = try_parse_from(strs(&["--metrics", "out.json"])).unwrap();
        assert_eq!(a.metrics.as_deref(), Some("out.json"));
        assert!(a.obs.is_enabled());
        let b = try_parse_from(strs(&["--metrics=out.prom"])).unwrap();
        assert_eq!(b.metrics.as_deref(), Some("out.prom"));
    }

    #[test]
    fn seed_flag_parses_and_flows_into_builder() {
        let a = try_parse_from(strs(&["--seed", "42"])).unwrap();
        assert_eq!(a.seed, Some(42));
        let eval = a.eval_builder().quick().build().unwrap();
        assert_eq!(eval.measure.seed, 42);
        assert!(try_parse_from(strs(&["--seed", "x"])).is_err());
        assert!(try_parse_from(strs(&["--seed"])).is_err());
    }

    #[test]
    fn resume_flag_parses_both_forms() {
        let a = try_parse_from(strs(&["--resume", "run.journal"])).unwrap();
        assert_eq!(a.resume.as_deref(), Some("run.journal"));
        let b = try_parse_from(strs(&["--resume=other.journal"])).unwrap();
        assert_eq!(b.resume.as_deref(), Some("other.journal"));
        assert!(try_parse_from(strs(&["--resume"])).is_err());
        // No flag: no journal, and the builder stays journal-free.
        let c = try_parse_from(strs(&[])).unwrap();
        assert!(c.resume.is_none());
        let eval = c.eval_builder().quick().build().unwrap();
        assert!(!eval.memo.is_journaling());
    }

    #[test]
    fn task_budget_flag_parses_and_rejects_zero() {
        let a = try_parse_from(strs(&["--task-budget-ms", "5000"])).unwrap();
        assert_eq!(a.task_budget_ms, Some(5000));
        let b = try_parse_from(strs(&["--task-budget-ms=250"])).unwrap();
        assert_eq!(b.task_budget_ms, Some(250));
        assert!(try_parse_from(strs(&["--task-budget-ms", "0"])).is_err());
        assert!(try_parse_from(strs(&["--task-budget-ms", "soon"])).is_err());
        assert!(try_parse_from(strs(&["--task-budget-ms"])).is_err());
        // The budget arms the evaluator's watchdog through the builder.
        let eval = a.eval_builder().quick().build().unwrap();
        let wd = eval.watchdog.as_deref().expect("watchdog armed");
        assert_eq!(wd.budget(), std::time::Duration::from_millis(5000));
    }

    #[test]
    fn queue_flag_parses_and_rejects_unknown_kinds() {
        let a = try_parse_from(strs(&[])).unwrap();
        assert_eq!(a.queue, QueueKind::Auto, "auto is the default");
        let b = try_parse_from(strs(&["--queue", "heap"])).unwrap();
        assert_eq!(b.queue, QueueKind::Heap);
        let c = try_parse_from(strs(&["--queue=calendar"])).unwrap();
        assert_eq!(c.queue, QueueKind::Calendar);
        assert!(try_parse_from(strs(&["--queue", "splay"])).is_err());
        assert!(try_parse_from(strs(&["--queue"])).is_err());
    }

    #[test]
    fn scenario_flag_validates_against_the_registry() {
        let a = try_parse_from(strs(&["--scenario", "faas"])).unwrap();
        assert_eq!(a.scenario.as_deref(), Some("faas"));
        assert!(a.traffic.is_none());
        let err = try_parse_from(strs(&["--scenario", "nope"])).unwrap_err();
        match err {
            WcsError::UnknownScenario { name, known } => {
                assert_eq!(name, "nope");
                assert!(known.contains(&"faas"), "{known:?}");
                assert!(known.contains(&"websearch"), "{known:?}");
            }
            other => panic!("expected UnknownScenario, got {other:?}"),
        }
        assert!(try_parse_from(strs(&["--scenario"])).is_err());
    }

    #[test]
    fn traffic_flag_parses_pack_names() {
        let a = try_parse_from(strs(&["--traffic", "flash-crowd"])).unwrap();
        assert_eq!(a.traffic, Some(TrafficPack::flash_crowd()));
        let b = try_parse_from(strs(&["--traffic=steady"])).unwrap();
        assert_eq!(b.traffic, Some(TrafficPack::Steady));
        let err = try_parse_from(strs(&["--traffic", "tsunami"])).unwrap_err();
        assert!(err.to_string().contains("flash-crowd"), "{err}");
        assert!(try_parse_from(strs(&["--traffic"])).is_err());
    }

    #[test]
    fn scenario_specs_narrow_the_default_slate() {
        let default = [
            ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd()),
            ScenarioSpec::steady("faas"),
            ScenarioSpec::steady("dag-analytics"),
        ];
        // No flags: the default slate, unchanged.
        let none = try_parse_from(strs(&[])).unwrap();
        assert_eq!(none.scenario_specs(&default), default.to_vec());
        // --scenario (+ --traffic) narrows to one spec.
        let one = try_parse_from(strs(&["--scenario", "webmail", "--traffic", "diurnal"])).unwrap();
        assert_eq!(
            one.scenario_specs(&default),
            vec![ScenarioSpec::steady("webmail").with_traffic(TrafficPack::diurnal())]
        );
        let steady = try_parse_from(strs(&["--scenario=faas"])).unwrap();
        assert_eq!(
            steady.scenario_specs(&default),
            vec![ScenarioSpec::steady("faas")]
        );
        // --traffic alone re-packs the slate's distinct workloads.
        let pack = try_parse_from(strs(&["--traffic", "failover-surge"])).unwrap();
        let specs = pack.scenario_specs(&default);
        assert_eq!(specs.len(), 2, "distinct workloads only: {specs:?}");
        assert!(specs
            .iter()
            .all(|s| s.traffic == TrafficPack::failover_surge()));
    }

    #[test]
    fn resilience_flags_arm_the_standard_layer() {
        let off = try_parse_from(strs(&[])).unwrap();
        assert!(off.resilience.is_none(), "resilience defaults off");
        let on = try_parse_from(strs(&["--resilience"])).unwrap();
        assert_eq!(on.resilience, Some(ResilienceSpec::standard()));
        // --retry-budget implies resilience and overrides the ratio.
        let budget = try_parse_from(strs(&["--retry-budget", "0.05"])).unwrap();
        assert_eq!(
            budget.resilience,
            Some(ResilienceSpec::standard().with_retry_ratio(0.05))
        );
        let both = try_parse_from(strs(&["--resilience", "--retry-budget=0.2"])).unwrap();
        assert_eq!(both.resilience.unwrap().retry_ratio, Some(0.2));
        assert!(try_parse_from(strs(&["--retry-budget", "0"])).is_err());
        assert!(try_parse_from(strs(&["--retry-budget", "-1"])).is_err());
        assert!(try_parse_from(strs(&["--retry-budget", "soon"])).is_err());
        assert!(try_parse_from(strs(&["--retry-budget"])).is_err());
        // The spec flows into the evaluator through the builder.
        let eval = on.eval_builder().quick().build().unwrap();
        assert_eq!(eval.resilience, Some(ResilienceSpec::standard()));
    }

    #[test]
    fn rejects_bad_thread_counts() {
        assert!(try_parse_from(strs(&["--threads", "zero"])).is_err());
        assert!(try_parse_from(strs(&["--threads", "0"])).is_err());
        assert!(try_parse_from(strs(&["--threads"])).is_err());
    }

    #[test]
    fn keeps_positional_args_in_order() {
        let a = try_parse_from(strs(&["desk", "--threads", "2", "extra"])).unwrap();
        assert_eq!(a.pool.threads(), 2);
        assert_eq!(a.rest, vec!["desk".to_owned(), "extra".to_owned()]);
    }

    #[test]
    fn cli_errors_surface_as_wcs_errors() {
        let err = try_parse_from(strs(&["--threads", "zero"])).unwrap_err();
        assert!(matches!(err, WcsError::Cli(_)), "{err:?}");
        // A zero thread count is a configuration error, unified too.
        let err = try_parse_from(strs(&["--threads", "0"])).unwrap_err();
        assert!(matches!(err, WcsError::Config(_)), "{err:?}");
    }

    #[test]
    fn standard_series_cover_every_family() {
        let reg = Registry::new();
        ensure_standard_series(&reg);
        let json = reg.snapshot().to_json();
        for family in STANDARD_FAMILIES {
            assert!(
                json.contains(&format!("\"{family}.")),
                "family {family} missing from {json}"
            );
        }
        // The disabled registry stays inert.
        let off = Registry::disabled();
        ensure_standard_series(&off);
        assert!(off.snapshot().metrics.is_empty());
    }
}
