//! The multi-process sweep service: supervisor and worker runtime behind
//! the `wcs-served` binary.
//!
//! # Protocol
//!
//! The **supervisor** owns a deterministic sweep plan ([`service_plan`]),
//! shards its cells with memo affinity (cells sharing replay-cache keys
//! stay together — see `affinity_shards`), and spawns one **worker
//! process** per shard — the same executable re-invoked with
//! [`WORKER_FLAG`] (every binary that embeds the supervisor calls
//! [`maybe_run_worker`] first, so a spawned copy runs the worker loop
//! instead of its own `main`). Each worker:
//!
//! 1. opens its own crash-safety journal and appends a *lease* record
//!    claiming its cell ranges ([`ServiceRecord::Lease`]),
//! 2. evaluates its cells serially (`--threads 1` semantics), letting the
//!    memo layer journal every freshly computed result,
//! 3. appends a *completion marker* ([`ServiceRecord::CellDone`]) after
//!    each cell — the marker sits *after* the cell's results in the file,
//!    so a valid prefix containing the marker provably contains the
//!    results, and
//! 4. seals the journal and exits `0`; or exits `3` (graceful) when its
//!    stdin closes — the supervisor holds the write end, so supervisor
//!    death or an explicit shutdown drains workers cleanly with no torn
//!    tail.
//!
//! The supervisor heartbeats workers by polling exit status and journal
//! growth. A worker that dies (any exit, any signal) or stalls past the
//! lease deadline has its lease expired, its unfinished cells *stolen*
//! and reassigned to a fresh worker (bounded retries, exponential
//! backoff). Completed cells are never re-evaluated: the markers tell the
//! supervisor exactly what survived.
//!
//! # Merge invariant
//!
//! When every cell is done, the supervisor merges all worker journals
//! ([`wcs_simcore::service::merge_journals`]) and **canonicalizes** the
//! merged set: a serial pass over the plan with every record preloaded
//! into the resume lane re-journals the records in first-compute order
//! (see `EvalMemo::set_journal_resume_hits`). The canonical journal is
//! byte-identical to the journal of an uninterrupted single-process
//! `--threads 1` run of the same plan and seed — the property the chaos
//! harness and the `service-chaos` CI gate assert as
//! `"merge_diverged": false`.

use std::fmt::Write as _;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wcs_core::designs::CoolingConfig;
use wcs_core::evaluate::EvalBuilder;
use wcs_core::{DesignEval, DesignPoint, Evaluator, WcsError};
use wcs_platforms::PlatformId;
use wcs_simcore::journal;
use wcs_simcore::obs::Registry;
use wcs_simcore::service::{merge_journals, ServiceProgress, ServiceRecord, StatusServer};

use crate::cli::{EXIT_ERROR, EXIT_GRACEFUL, EXIT_OK};

/// The argv flag that turns any embedding binary into a sweep worker.
pub const WORKER_FLAG: &str = "--service-worker";

/// The sweep plan the service runs: a pure function of `cells`, shared by
/// supervisor, workers, and the serial reference run. The full plan is
/// the chaos cell family (six baselines, N1, N2, and the two N2
/// ablations) plus two packaging variants; `cells` truncates it for
/// quick runs (`0` or anything past the end keeps the full plan).
pub fn service_plan(cells: usize) -> Vec<DesignPoint> {
    let mut designs: Vec<DesignPoint> = PlatformId::ALL
        .iter()
        .map(|&id| DesignPoint::baseline(id))
        .collect();
    designs.push(DesignPoint::n1());
    designs.push(DesignPoint::n2());
    let mut no_share = DesignPoint::n2();
    no_share.memshare = None;
    no_share.name = "N2-noshare".into();
    designs.push(no_share);
    let mut no_flash = DesignPoint::n2();
    no_flash.storage = None;
    no_flash.name = "N2-noflash".into();
    designs.push(no_flash);
    let mut dense = DesignPoint::n1();
    dense.name = "N1-dense".into();
    dense.cooling.systems_per_rack *= 2;
    designs.push(dense);
    let mut conventional = DesignPoint::n2();
    conventional.name = "N2-conventional".into();
    conventional.cooling = CoolingConfig::conventional();
    designs.push(conventional);
    if cells > 0 && cells < designs.len() {
        designs.truncate(cells);
    }
    designs
}

/// One canonical, byte-comparable render of a plan evaluation.
pub fn render_evals(evals: &[DesignEval]) -> String {
    let mut out = String::new();
    for e in evals {
        let _ = writeln!(out, "{e:?}");
    }
    out
}

/// Encode cell indices as a compact `a..b,c..d` range list (half-open).
fn encode_ranges(cells: &[u32]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < cells.len() {
        let start = cells[i];
        let mut end = start + 1;
        while i + 1 < cells.len() && cells[i + 1] == end {
            end += 1;
            i += 1;
        }
        if !out.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "{start}..{end}");
        i += 1;
    }
    out
}

/// Parse an `a..b,c..d` range list back into sorted cell indices.
fn decode_ranges(s: &str) -> Option<Vec<u32>> {
    let mut cells = Vec::new();
    for part in s.split(',') {
        let (a, b) = part.split_once("..")?;
        let (a, b): (u32, u32) = (a.parse().ok()?, b.parse().ok()?);
        if b < a {
            return None;
        }
        cells.extend(a..b);
    }
    cells.sort_unstable();
    cells.dedup();
    Some(cells)
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Parsed worker command line (everything after [`WORKER_FLAG`]).
struct WorkerArgs {
    journal: PathBuf,
    worker_id: u32,
    attempt: u32,
    cells: Vec<u32>,
    plan_cells: usize,
    seed: u64,
    /// Chaos injection: after completing this many cells, spin forever
    /// (alive but journaling nothing) until killed — exercises the
    /// supervisor's lease-expiry path.
    stall_after: Option<u32>,
}

fn parse_worker_args(args: &[String]) -> Result<WorkerArgs, String> {
    let mut journal = None;
    let mut worker_id = 0u32;
    let mut attempt = 0u32;
    let mut cells = None;
    let mut plan_cells = 0usize;
    let mut seed = 0x5EEDu64;
    let mut stall_after = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            a if a == WORKER_FLAG => {}
            "--journal" => journal = Some(PathBuf::from(value("--journal")?)),
            "--worker-id" => {
                worker_id = value("--worker-id")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--attempt" => attempt = value("--attempt")?.parse().map_err(|e| format!("{e}"))?,
            "--cells" => {
                cells =
                    Some(decode_ranges(&value("--cells")?).ok_or("malformed --cells range list")?);
            }
            "--plan-cells" => {
                plan_cells = value("--plan-cells")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--chaos-stall-after" => {
                stall_after = Some(
                    value("--chaos-stall-after")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                );
            }
            other => return Err(format!("unknown worker flag {other}")),
        }
    }
    Ok(WorkerArgs {
        journal: journal.ok_or("--journal is required")?,
        worker_id,
        attempt,
        cells: cells.ok_or("--cells is required")?,
        plan_cells,
        seed,
        stall_after,
    })
}

/// If the command line carries [`WORKER_FLAG`], run the worker loop and
/// exit the process with its status — the embedding binary's own `main`
/// never runs. Call this first in every binary that spawns the
/// supervisor (the supervisor re-invokes `current_exe()`).
pub fn maybe_run_worker() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == WORKER_FLAG) {
        std::process::exit(run_worker(&args));
    }
}

/// The worker loop; returns the process exit code (see the exit-code
/// convention in [`crate::cli`]).
fn run_worker(args: &[String]) -> i32 {
    let args = match parse_worker_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: worker command line: {e}");
            return crate::cli::EXIT_USAGE;
        }
    };
    let plan = service_plan(args.plan_cells);
    let built = Evaluator::builder()
        .quick()
        .threads(1)
        .map(|b| b.seed(args.seed).resume(&args.journal))
        .and_then(EvalBuilder::build);
    let eval = match built {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: worker {}: cannot open journal: {e}", args.worker_id);
            return EXIT_ERROR;
        }
    };
    // Claim the assigned ranges before touching any cell: the lease is
    // the first record a fresh journal carries.
    for (start, end) in contiguous_runs(&args.cells) {
        let lease = ServiceRecord::Lease {
            worker: args.worker_id,
            start,
            end,
            attempt: args.attempt,
        };
        let payload = lease.encode();
        eval.memo
            .journal_marker(lease.key(), ServiceRecord::digest(&payload), &payload);
    }

    // Graceful shutdown: the supervisor holds our stdin open. EOF (the
    // supervisor died or dropped the pipe) means "seal and leave" — the
    // journal loses nothing, and the supervisor's replacement reclaims
    // the unfinished cells from the lease and markers.
    let shutdown = Arc::new(AtomicBool::new(false));
    {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("wcs-worker-stdin".into())
            .spawn(move || {
                let mut buf = [0u8; 64];
                let mut stdin = std::io::stdin();
                loop {
                    match stdin.read(&mut buf) {
                        Ok(0) | Err(_) => {
                            shutdown.store(true, Ordering::Relaxed);
                            return;
                        }
                        Ok(_) => {}
                    }
                }
            })
            .expect("spawn stdin watcher");
    }

    for (completed, &cell) in args.cells.iter().enumerate() {
        let completed = completed as u32;
        if shutdown.load(Ordering::Relaxed) {
            eval.memo.sync_journal();
            eprintln!(
                "worker {}: graceful shutdown after {completed} cell(s)",
                args.worker_id
            );
            return EXIT_GRACEFUL;
        }
        if args.stall_after == Some(completed) {
            // Chaos: stay alive, make no progress. Only SIGKILL (lease
            // expiry) or stdin-close ends this.
            loop {
                if shutdown.load(Ordering::Relaxed) {
                    eval.memo.sync_journal();
                    return EXIT_GRACEFUL;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let design = match plan.get(cell as usize) {
            Some(d) => d,
            None => {
                eprintln!("error: worker {}: cell {cell} outside plan", args.worker_id);
                return EXIT_ERROR;
            }
        };
        if let Err(e) = eval.evaluate(design) {
            eprintln!(
                "error: worker {}: cell {cell} ({}) failed: {e}",
                args.worker_id, design.name
            );
            return EXIT_ERROR;
        }
        let marker = ServiceRecord::CellDone { cell };
        let payload = marker.encode();
        eval.memo
            .journal_marker(marker.key(), ServiceRecord::digest(&payload), &payload);
    }
    eval.memo.sync_journal();
    EXIT_OK
}

/// Shard `plan` across up to `workers` processes with memo affinity:
/// cells sharing a [`wcs_core::designs::MemShareConfig`] stay on one
/// worker — their trace replays hit the process-local memo instead of
/// being recomputed once per process — while memshare-free cells move
/// freely as singletons. Units are bin-packed largest-first onto the
/// least-loaded worker, so the result is a pure function of the plan
/// and deterministic across supervisor restarts. Returns non-empty
/// shards, each sorted in plan order.
///
/// Contiguous near-equal ranges (the previous policy) split the
/// memshare family across processes; every process then replayed the
/// same traces cold, which is pure duplicated CPU and made 4 workers
/// *lose* to 1 on small machines.
fn affinity_shards(plan: &[DesignPoint], workers: usize) -> Vec<Vec<u32>> {
    // Atomic units: one per distinct memshare config (rendered — the
    // configs are plain data with stable Debug output), singletons
    // otherwise.
    let mut units: Vec<(Vec<u32>, u64)> = Vec::new();
    let mut shared: Vec<(String, usize)> = Vec::new();
    for (i, d) in plan.iter().enumerate() {
        let light = 1 + u64::from(d.storage.is_some());
        match &d.memshare {
            None => units.push((vec![i as u32], light)),
            Some(ms) => {
                let key = format!("{ms:?}");
                match shared.iter().find(|(k, _)| *k == key) {
                    Some(&(_, at)) => {
                        units[at].0.push(i as u32);
                        units[at].1 += light;
                    }
                    None => {
                        shared.push((key, units.len()));
                        // The group's first cell pays the full replay
                        // cost; weight it like several light cells.
                        units.push((vec![i as u32], 8 + light));
                    }
                }
            }
        }
    }
    // Largest-first onto the least-loaded bin; `min_by_key` keeps the
    // first minimum, so ties break toward earlier bins.
    units.sort_by(|a, b| b.1.cmp(&a.1).then(a.0[0].cmp(&b.0[0])));
    let mut bins: Vec<(u64, Vec<u32>)> = vec![(0, Vec::new()); workers.max(1)];
    for (cells, w) in units {
        let bin = bins
            .iter_mut()
            .min_by_key(|(load, _)| *load)
            .expect("at least one bin");
        bin.0 += w;
        bin.1.extend(cells);
    }
    bins.retain(|(_, cells)| !cells.is_empty());
    bins.into_iter()
        .map(|(_, mut cells)| {
            cells.sort_unstable();
            cells
        })
        .collect()
}

/// Maximal contiguous runs of a sorted index list, as `(start, end)`.
fn contiguous_runs(cells: &[u32]) -> Vec<(u32, u32)> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < cells.len() {
        let start = cells[i];
        let mut end = start + 1;
        while i + 1 < cells.len() && cells[i + 1] == end {
            end += 1;
            i += 1;
        }
        runs.push((start, end));
        i += 1;
    }
    runs
}

// ---------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------

/// Supervisor configuration.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Worker process count.
    pub workers: usize,
    /// Plan truncation (0 = the full [`service_plan`]).
    pub plan_cells: usize,
    /// Measurement seed shared by workers and the reference run.
    pub seed: u64,
    /// Scratch directory for per-worker journals.
    pub dir: PathBuf,
    /// Path of the canonical merged journal this run produces.
    pub out: PathBuf,
    /// Executable to spawn as workers (normally `current_exe`).
    pub worker_exe: PathBuf,
    /// Lease deadline: a live worker whose journal has not grown for
    /// this long is killed and its lease expired.
    pub stall_ms: u64,
    /// Supervisor poll interval.
    pub poll_ms: u64,
    /// Respawn budget per reassignment lineage; exhausting it fails the
    /// run.
    pub max_retries: u32,
    /// Chaos: SIGKILL one live worker when completed-cell fraction first
    /// reaches each entry.
    pub kill_at: Vec<f64>,
    /// Chaos: worker index that stalls (alive, no progress) after
    /// completing the given number of cells — exercises lease expiry.
    pub stall_worker: Option<(usize, u32)>,
    /// Serve `/status` and `/metrics` on this port (0 = ephemeral).
    pub status_port: Option<u16>,
    /// Metrics registry for the `recovery.worker_*` family.
    pub obs: Registry,
}

impl ServiceOptions {
    /// Defaults for `workers` worker processes with scratch space under
    /// the system temp directory.
    pub fn new(workers: usize) -> Self {
        let dir = std::env::temp_dir().join(format!("wcs-served-{}", std::process::id()));
        ServiceOptions {
            workers: workers.max(1),
            plan_cells: 0,
            seed: 0x5EED,
            out: dir.join("canonical.journal"),
            dir,
            worker_exe: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("wcs-served")),
            stall_ms: 20_000,
            poll_ms: 15,
            max_retries: 5,
            kill_at: Vec::new(),
            stall_worker: None,
            status_port: None,
            obs: Registry::disabled(),
        }
    }
}

/// What a completed service run produced.
#[derive(Debug)]
pub struct ServiceReport {
    /// Plan size.
    pub cells: usize,
    /// Canonical render of the full plan evaluation (resume-lane served).
    pub render: String,
    /// Path of the canonical merged journal.
    pub canonical_journal: PathBuf,
    /// Records in the canonical journal.
    pub merged_records: usize,
    /// Progress and recovery counters accumulated over the run.
    pub progress: Arc<ServiceProgress>,
}

/// One live worker process under supervision.
struct WorkerSlot {
    id: u32,
    child: Child,
    /// Held open; dropping it closes the worker's stdin (graceful stop).
    stdin: Option<ChildStdin>,
    journal: PathBuf,
    cells: Vec<u32>,
    attempt: u32,
    last_len: u64,
    /// Byte offset of the journal's parsed prefix — the resume point for
    /// [`journal::replay_tail`], so each heartbeat decodes only what the
    /// worker appended since the previous poll.
    tail_offset: u64,
    last_progress: Instant,
}

/// Cells waiting for a respawn slot (work stealing with backoff).
struct PendingRespawn {
    cells: Vec<u32>,
    attempt: u32,
    ready_at: Instant,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CellState {
    Pending,
    Leased,
    Done,
}

fn service_err(msg: String) -> WcsError {
    WcsError::Service(msg)
}

/// Run the sweep service to completion: shard, spawn, heartbeat, steal,
/// merge, canonicalize. Returns the report; the canonical journal at
/// `opts.out` is byte-identical to a single-process `--threads 1` run of
/// the same plan and seed.
///
/// # Errors
/// [`WcsError::Service`] when a worker cannot be spawned or a cell
/// lineage exhausts its retry budget; journal and evaluator errors
/// surface as their own [`WcsError`] variants.
pub fn run_supervisor(opts: &ServiceOptions) -> Result<ServiceReport, WcsError> {
    let plan = service_plan(opts.plan_cells);
    let total = plan.len();
    std::fs::create_dir_all(&opts.dir)
        .map_err(|e| service_err(format!("cannot create {}: {e}", opts.dir.display())))?;

    let progress = ServiceProgress::new();
    progress.cells_total.store(total as u64, Ordering::Relaxed);
    let status = match opts.status_port {
        Some(port) => Some(
            StatusServer::start(port, Arc::clone(&progress), opts.obs.clone())
                .map_err(|e| service_err(format!("cannot bind status server: {e}")))?,
        ),
        None => None,
    };
    if let Some(s) = &status {
        eprintln!("wcs-served: status on http://{}/status", s.addr());
    }

    let mut cell_state = vec![CellState::Pending; total];
    let mut next_spawn_id = 0u32;
    let mut slots: Vec<WorkerSlot> = Vec::new();
    let mut all_journals: Vec<PathBuf> = Vec::new();
    let mut pending: Vec<PendingRespawn> = Vec::new();
    let mut kill_at: Vec<f64> = opts.kill_at.clone();
    kill_at.sort_by(|a, b| a.partial_cmp(b).expect("finite fractions"));

    let mut spawn = |cells: Vec<u32>,
                     attempt: u32,
                     stall_after: Option<u32>,
                     all_journals: &mut Vec<PathBuf>,
                     cell_state: &mut Vec<CellState>|
     -> Result<WorkerSlot, WcsError> {
        let id = next_spawn_id;
        next_spawn_id += 1;
        let journal = opts.dir.join(format!("worker-{id}.journal"));
        let mut cmd = Command::new(&opts.worker_exe);
        cmd.arg(WORKER_FLAG)
            .arg("--journal")
            .arg(&journal)
            .arg("--worker-id")
            .arg(id.to_string())
            .arg("--attempt")
            .arg(attempt.to_string())
            .arg("--seed")
            .arg(opts.seed.to_string())
            .arg("--plan-cells")
            .arg(opts.plan_cells.to_string())
            .arg("--cells")
            .arg(encode_ranges(&cells))
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if let Some(after) = stall_after {
            cmd.arg("--chaos-stall-after").arg(after.to_string());
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| service_err(format!("cannot spawn worker {id}: {e}")))?;
        let stdin = child.stdin.take();
        for &c in &cells {
            cell_state[c as usize] = CellState::Leased;
        }
        all_journals.push(journal.clone());
        progress.worker_spawns.fetch_add(1, Ordering::Relaxed);
        progress.workers_live.fetch_add(1, Ordering::Relaxed);
        Ok(WorkerSlot {
            id,
            child,
            stdin,
            journal,
            cells,
            attempt,
            last_len: 0,
            tail_offset: 0,
            last_progress: Instant::now(),
        })
    };

    // Initial shard: memo-affinity (see [`affinity_shards`]) — cells
    // sharing replay-cache keys stay in one process.
    for (w, cells) in affinity_shards(&plan, opts.workers).into_iter().enumerate() {
        let stall = match opts.stall_worker {
            Some((idx, after)) if idx == w => Some(after),
            _ => None,
        };
        let slot = spawn(cells, 0, stall, &mut all_journals, &mut cell_state)?;
        slots.push(slot);
    }

    let stall_deadline = Duration::from_millis(opts.stall_ms);
    let done =
        |cell_state: &[CellState]| cell_state.iter().filter(|&&s| s == CellState::Done).count();

    loop {
        // 1. Heartbeat: absorb completion markers from every live journal.
        // A cheap stat gates the read — an unchanged file is skipped
        // outright — and the read itself resumes from the cached offset,
        // decoding only the appended tail. Re-reading whole journals
        // here made the supervisor CPU-bound at higher worker counts.
        for slot in &mut slots {
            let len = std::fs::metadata(&slot.journal)
                .map(|m| m.len())
                .unwrap_or(0);
            if len == slot.last_len {
                continue;
            }
            if len > slot.last_len {
                slot.last_len = len;
                slot.last_progress = Instant::now();
            }
            let Ok((records, offset)) = journal::replay_tail(&slot.journal, slot.tail_offset)
            else {
                continue;
            };
            slot.tail_offset = offset;
            for r in &records {
                if let Some(ServiceRecord::CellDone { cell }) = ServiceRecord::decode(&r.payload) {
                    if let Some(s) = cell_state.get_mut(cell as usize) {
                        if *s != CellState::Done {
                            *s = CellState::Done;
                        }
                    }
                }
            }
        }
        let done_now = done(&cell_state);
        progress
            .cells_done
            .store(done_now as u64, Ordering::Relaxed);

        // 2. Chaos: SIGKILL a live worker at each requested plan fraction.
        while let Some(&frac) = kill_at.first() {
            if (done_now as f64) < frac * (total as f64) {
                break;
            }
            // Prefer a victim that still has unfinished work and is
            // actively progressing — killing an already-stalled worker
            // would shadow the lease-expiry path, which is its own
            // failure mode to exercise.
            let victim = slots
                .iter()
                .filter(|s| {
                    s.cells
                        .iter()
                        .any(|&c| cell_state[c as usize] != CellState::Done)
                })
                .max_by_key(|s| s.last_progress)
                .map(|s| s.id);
            match victim {
                Some(id) => {
                    let slot = slots
                        .iter_mut()
                        .find(|s| s.id == id)
                        .expect("victim exists");
                    eprintln!("wcs-served: chaos kill of worker {id} at {done_now}/{total} cells");
                    let _ = slot.child.kill();
                    kill_at.remove(0);
                }
                None => {
                    // No live worker holds unfinished cells; the fraction
                    // can no longer be honoured meaningfully.
                    kill_at.remove(0);
                }
            }
        }

        // 3. Reap exits and expire stalled leases.
        let mut keep: Vec<WorkerSlot> = Vec::new();
        for mut slot in slots {
            let exited = slot.child.try_wait().ok().flatten();
            let stalled = exited.is_none() && slot.last_progress.elapsed() > stall_deadline;
            if stalled {
                eprintln!(
                    "wcs-served: worker {} stalled > {}ms; expiring lease",
                    slot.id, opts.stall_ms
                );
                progress
                    .worker_leases_expired
                    .fetch_add(1, Ordering::Relaxed);
                let _ = slot.child.kill();
                let _ = slot.child.wait();
            }
            let status = if stalled {
                None
            } else {
                match exited {
                    Some(s) => Some(s),
                    None => {
                        keep.push(slot);
                        continue;
                    }
                }
            };
            // The worker is gone: final tail read (markers seen by the
            // heartbeat are already absorbed), then reclaim.
            progress.workers_live.fetch_sub(1, Ordering::Relaxed);
            if let Ok((records, _)) = journal::replay_tail(&slot.journal, slot.tail_offset) {
                for r in &records {
                    if let Some(ServiceRecord::CellDone { cell }) =
                        ServiceRecord::decode(&r.payload)
                    {
                        if let Some(s) = cell_state.get_mut(cell as usize) {
                            *s = CellState::Done;
                        }
                    }
                }
            }
            let graceful = status.is_some_and(|s| s.code() == Some(EXIT_GRACEFUL));
            let clean = status.is_some_and(|s| s.success());
            if !clean && !graceful {
                progress
                    .worker_kills_observed
                    .fetch_add(1, Ordering::Relaxed);
            }
            let orphans: Vec<u32> = slot
                .cells
                .iter()
                .copied()
                .filter(|&c| cell_state[c as usize] != CellState::Done)
                .collect();
            if orphans.is_empty() {
                continue;
            }
            if slot.attempt >= opts.max_retries {
                return Err(service_err(format!(
                    "cells {} exhausted {} retries",
                    encode_ranges(&orphans),
                    opts.max_retries
                )));
            }
            progress
                .worker_cells_stolen
                .fetch_add(orphans.len() as u64, Ordering::Relaxed);
            for &c in &orphans {
                cell_state[c as usize] = CellState::Pending;
            }
            // Bounded exponential backoff before the replacement spawn.
            let backoff =
                Duration::from_millis((opts.poll_ms.max(1) << slot.attempt.min(6)).min(1_000));
            pending.push(PendingRespawn {
                cells: orphans,
                attempt: slot.attempt + 1,
                ready_at: Instant::now() + backoff,
            });
        }
        slots = keep;

        // 4. Respawn ready reassignments (work stealing).
        let now = Instant::now();
        let mut rest = Vec::new();
        for p in pending {
            if p.ready_at <= now {
                progress.worker_retries.fetch_add(1, Ordering::Relaxed);
                let slot = spawn(p.cells, p.attempt, None, &mut all_journals, &mut cell_state)?;
                slots.push(slot);
            } else {
                rest.push(p);
            }
        }
        pending = rest;

        if done(&cell_state) == total {
            break;
        }
        std::thread::sleep(Duration::from_millis(opts.poll_ms));
    }

    // Every cell is done: drain the remaining workers gracefully (close
    // stdin, then wait briefly, then insist).
    for slot in &mut slots {
        drop(slot.stdin.take());
    }
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    for slot in &mut slots {
        loop {
            match slot.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < drain_deadline => {
                    std::thread::sleep(Duration::from_millis(opts.poll_ms));
                }
                _ => {
                    let _ = slot.child.kill();
                    let _ = slot.child.wait();
                    break;
                }
            }
        }
        progress.workers_live.fetch_sub(1, Ordering::Relaxed);
    }

    // Merge every journal this run produced (including dead workers').
    let mut inputs = Vec::new();
    for path in &all_journals {
        let (records, _) = journal::replay(path)?;
        inputs.push(records);
    }
    let merged = merge_journals(&inputs);
    progress
        .worker_merge_conflicts
        .fetch_add(merged.conflicts, Ordering::Relaxed);

    // Canonicalize: preload the merged set into a serial evaluator's
    // resume lane and journal resume hits into a fresh file — the pass
    // re-emits the records in first-compute order, reproducing the byte
    // layout of an uninterrupted single-process run.
    let _ = std::fs::remove_file(&opts.out);
    let eval = Evaluator::builder()
        .quick()
        .threads(1)?
        .seed(opts.seed)
        .build()?;
    eval.memo.seed_journal(&merged.records);
    let (_, writer, _) = journal::open(&opts.out)?;
    eval.memo.attach_journal(writer);
    eval.memo.set_journal_resume_hits(true);
    let evals = eval.evaluate_many(&plan)?;
    eval.memo.sync_journal();
    let render = render_evals(&evals);
    let merged_records = merged.records.len();

    progress.complete.store(true, Ordering::Relaxed);
    // Shut the status server down before exporting into the shared
    // registry: `/metrics` folds a live view of the progress counters
    // into each response, so exporting while it still serves would
    // double-count the worker series.
    if let Some(s) = status {
        s.shutdown();
    }
    progress.export(&opts.obs);
    Ok(ServiceReport {
        cells: total,
        render,
        canonical_journal: opts.out.clone(),
        merged_records,
        progress,
    })
}

/// Run an uninterrupted single-process `--threads 1` reference of the
/// same plan and seed, journaling to `journal_path` (removed first).
/// Returns the render; the journal bytes at `journal_path` are the
/// ground truth [`run_supervisor`]'s canonical journal must match.
///
/// # Errors
/// Journal and evaluator errors surface as [`WcsError`].
pub fn run_serial_reference(
    plan_cells: usize,
    seed: u64,
    journal_path: &Path,
) -> Result<String, WcsError> {
    let plan = service_plan(plan_cells);
    let _ = std::fs::remove_file(journal_path);
    let eval = Evaluator::builder()
        .quick()
        .threads(1)?
        .seed(seed)
        .resume(journal_path)
        .build()?;
    let evals = eval.evaluate_many(&plan)?;
    eval.memo.sync_journal();
    Ok(render_evals(&evals))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_codec_roundtrips() {
        for cells in [
            vec![0u32, 1, 2, 3],
            vec![5],
            vec![0, 1, 4, 5, 6, 9],
            vec![2, 7],
        ] {
            let encoded = encode_ranges(&cells);
            assert_eq!(decode_ranges(&encoded), Some(cells.clone()), "{encoded}");
        }
        assert_eq!(encode_ranges(&[0, 1, 4, 5, 6, 9]), "0..2,4..7,9..10");
        assert!(decode_ranges("3..1").is_none());
        assert!(decode_ranges("x..y").is_none());
        assert!(decode_ranges("1-4").is_none());
    }

    #[test]
    fn contiguous_runs_split_correctly() {
        assert_eq!(contiguous_runs(&[0, 1, 2]), vec![(0, 3)]);
        assert_eq!(contiguous_runs(&[1, 3, 4]), vec![(1, 2), (3, 5)]);
        assert!(contiguous_runs(&[]).is_empty());
    }

    #[test]
    fn plan_is_deterministic_and_truncates() {
        let full = service_plan(0);
        assert_eq!(full.len(), 12);
        let names: Vec<&str> = full.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"N2-conventional"));
        assert!(names.contains(&"N1-dense"));
        let again = service_plan(usize::MAX);
        assert_eq!(names.len(), again.len());
        let four = service_plan(4);
        assert_eq!(four.len(), 4);
        for (a, b) in four.iter().zip(full.iter()) {
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn affinity_shards_cover_plan_and_keep_memshare_groups_whole() {
        let plan = service_plan(0);
        for workers in [1usize, 2, 4, 8, 32] {
            let shards = affinity_shards(&plan, workers);
            assert!(!shards.is_empty() && shards.len() <= workers);
            let mut seen: Vec<u32> = shards.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(
                seen,
                (0..plan.len() as u32).collect::<Vec<_>>(),
                "{workers} workers must cover every cell exactly once"
            );
            // Every pair of cells with the same memshare config sits in
            // the same shard — the property that stops cross-process
            // replay duplication.
            let shard_of = |cell: u32| shards.iter().position(|s| s.contains(&cell)).unwrap();
            for (i, a) in plan.iter().enumerate() {
                for (j, b) in plan.iter().enumerate().skip(i + 1) {
                    if let (Some(ma), Some(mb)) = (&a.memshare, &b.memshare) {
                        if format!("{ma:?}") == format!("{mb:?}") {
                            assert_eq!(
                                shard_of(i as u32),
                                shard_of(j as u32),
                                "cells {i} and {j} share a memshare config"
                            );
                        }
                    }
                }
            }
            // Determinism: recomputing the shards yields the same split.
            assert_eq!(shards, affinity_shards(&plan, workers));
        }
    }

    #[test]
    fn worker_args_parse_and_reject() {
        let ok = parse_worker_args(&[
            WORKER_FLAG.to_owned(),
            "--journal".into(),
            "/tmp/w.journal".into(),
            "--worker-id".into(),
            "3".into(),
            "--attempt".into(),
            "1".into(),
            "--cells".into(),
            "0..2,5..6".into(),
            "--plan-cells".into(),
            "6".into(),
            "--seed".into(),
            "99".into(),
        ])
        .expect("valid worker args");
        assert_eq!(ok.worker_id, 3);
        assert_eq!(ok.attempt, 1);
        assert_eq!(ok.cells, vec![0, 1, 5]);
        assert_eq!(ok.plan_cells, 6);
        assert_eq!(ok.seed, 99);
        assert!(ok.stall_after.is_none());

        assert!(parse_worker_args(&["--cells".into(), "0..2".into()]).is_err());
        assert!(parse_worker_args(&[
            "--journal".into(),
            "x".into(),
            "--cells".into(),
            "bad".into()
        ])
        .is_err());
        assert!(parse_worker_args(&["--frobnicate".into()]).is_err());
    }
}
