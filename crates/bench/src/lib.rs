//! Benchmark harness crate: binaries regenerating every table and figure
//! of the paper, plus Criterion micro/macro benches.
//!
//! Binaries (run with `cargo run --release -p wcs-bench --bin <name>`):
//!
//! | binary   | regenerates |
//! |----------|-------------|
//! | `table1` | Table 1 — benchmark suite summary |
//! | `fig1`   | Figure 1 — cost model and breakdowns |
//! | `table2` | Table 2 — the six platforms |
//! | `fig2`   | Figure 2 — per-platform efficiency grid |
//! | `fig3`   | Figure 3 — cooling designs |
//! | `fig4`   | Figure 4 — memory blade slowdowns and provisioning |
//! | `table3` | Table 3 — flash disk caching study |
//! | `fig5`   | Figure 5 — unified N1/N2 designs |
//! | `ablation` | sensitivity studies (activity factor, tariff, policy, flash size, N2 pieces) |
//! | `sweeps`  | design-space sweeps (local fraction, flash capacity, platform axis) |
//! | `ensemble`| multi-server blade study: contention, page sharing, hybrid blades |
//! | `report`  | full markdown reproduction report (scorecard + designs) |
//! | `validate`| the reproduction scorecard: every paper anchor, pass/fail |
//! | `faults`  | fault-injection scenarios and graceful degradation |
//! | `perfsmoke` | fixed-seed wall-time smoke benchmark (`BENCH_results.json`) |
//! | `chaos`   | crash-safety harness: kill/resume byte-identity, panic isolation, deadlines |
//! | `wcs-served` | crash-tolerant multi-process sweep service: lease-based work stealing over the journal |
//!
//! Every binary accepts the shared flag cluster from [`cli`]:
//! `--threads N` (default: all available cores) sizes the worker pool,
//! `--no-memo` disables the sub-simulation caches, `--seed S` overrides
//! the measurement seed, `--metrics PATH` exports the observability
//! snapshot (JSON, Prometheus for `.prom`, stdout for `-`),
//! `--resume JOURNAL` replays completed sweep cells from a crash-safety
//! journal and appends new ones, and `--task-budget-ms N` arms the
//! watchdog that degrades (rather than hangs on) stuck cells. Results
//! are bit-identical at any thread count, memo setting, and resume
//! state; the flags only change wall-clock time and reporting.

pub mod cli;
pub mod service;
