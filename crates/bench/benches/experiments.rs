//! Macro-benchmarks: one end-to-end kernel per paper experiment, so
//! regressions in any experiment's critical path show up in CI.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wcs_core::designs::DesignPoint;
use wcs_core::evaluate::Evaluator;
use wcs_memshare::slowdown::{estimate_slowdown, SlowdownConfig};
use wcs_platforms::{catalog, PlatformId};
use wcs_simserver::{run_batch, ServerSpec};
use wcs_tco::TcoModel;
use wcs_workloads::perf::{measure_perf, MeasureConfig};
use wcs_workloads::service::PlatformDemand;
use wcs_workloads::{suite, WorkloadId};

/// Figure 1 / Table 2 kernel: pricing a platform.
fn bench_fig1_tco(c: &mut Criterion) {
    let model = TcoModel::paper_default();
    let p = catalog::platform(PlatformId::Srvr1);
    c.bench_function("fig1_server_tco", |b| {
        b.iter(|| black_box(model.server_tco(&p)))
    });
}

/// Figure 2 kernel: one QoS throughput search (websearch on emb1).
fn bench_fig2_cell(c: &mut Criterion) {
    let wl = suite::workload(WorkloadId::Websearch);
    let p = catalog::platform(PlatformId::Emb1);
    let cfg = MeasureConfig::quick();
    c.bench_function("fig2_websearch_emb1", |b| {
        b.iter(|| black_box(measure_perf(&wl, &p, &cfg).unwrap().value))
    });
}

/// Figure 2 kernel (batch): one mapreduce job.
fn bench_fig2_batch(c: &mut Criterion) {
    let wl = suite::workload(WorkloadId::MapredWc);
    let p = catalog::platform(PlatformId::Desk);
    let demand = PlatformDemand::new(&wl, &p);
    c.bench_function("fig2_mapred_batch_256", |b| {
        b.iter(|| black_box(run_batch(ServerSpec::new(2), demand.tasks(256), 8)))
    });
}

/// Figure 4 kernel: one slowdown estimate (trace replay + conversion).
/// Uses a shortened trace; the full-length version runs in the fig4 bin.
fn bench_fig4_slowdown(c: &mut Criterion) {
    let cfg = SlowdownConfig {
        fill: 300_000,
        measured: 300_000,
        ..SlowdownConfig::paper_default()
    };
    c.bench_function("fig4_websearch_slowdown", |b| {
        b.iter(|| black_box(estimate_slowdown(WorkloadId::Websearch, &cfg)))
    });
}

/// Figure 5 kernel: a full design-point evaluation (N1, quick settings).
fn bench_fig5_design_eval(c: &mut Criterion) {
    let eval = Evaluator::quick();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("evaluate_n1_quick", |b| {
        b.iter(|| black_box(eval.evaluate(&DesignPoint::n1()).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1_tco,
    bench_fig2_cell,
    bench_fig2_batch,
    bench_fig4_slowdown,
    bench_fig5_design_eval
);
criterion_main!(benches);
