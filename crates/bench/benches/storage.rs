//! Benchmarks of the storage system (Table 3's engine): flash-cache
//! replay throughput with and without flash.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wcs_flashcache::system::StorageSystem;
use wcs_platforms::storage::{DiskModel, FlashModel};
use wcs_workloads::disktrace::{params_for, DiskTraceGen};
use wcs_workloads::WorkloadId;

fn bench_replay(c: &mut Criterion) {
    c.bench_function("storage_replay_disk_only_50k", |b| {
        b.iter(|| {
            let mut sys = StorageSystem::disk_only(DiskModel::laptop_remote());
            let mut gen = DiskTraceGen::new(params_for(WorkloadId::Ytube), 3);
            black_box(sys.replay(&mut gen, 50_000))
        })
    });
    c.bench_function("storage_replay_with_flash_50k", |b| {
        b.iter(|| {
            let mut sys =
                StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
            let mut gen = DiskTraceGen::new(params_for(WorkloadId::Ytube), 3);
            black_box(sys.replay(&mut gen, 50_000))
        })
    });
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
