//! Benchmarks of the memoization layer: the open-addressed table
//! against `std::collections::HashMap`, and warm (cached) versus cold
//! sweep replays.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wcs_memshare::slowdown::{estimate_slowdown_with, ReplayMemo, SlowdownConfig};
use wcs_simcore::table::OpenMap;
use wcs_simcore::SimRng;
use wcs_workloads::WorkloadId;

/// The two-level simulator's access pattern: lookups dominate, inserts
/// and removes happen on misses, keys are page numbers.
fn bench_table(c: &mut Criterion) {
    let keys: Vec<u64> = {
        let mut rng = SimRng::seed_from(11);
        (0..4096).map(|_| rng.next_u64() % 8192).collect()
    };
    c.bench_function("open_map_churn_4k", |b| {
        b.iter(|| {
            let mut map: OpenMap<u64, u32> = OpenMap::with_capacity(4096);
            for (i, &k) in keys.iter().enumerate() {
                match map.get_mut(&k) {
                    Some(v) => *v += 1,
                    None => {
                        if map.len() >= 2048 {
                            map.remove(&(k / 2));
                        }
                        map.insert(k, i as u32);
                    }
                }
            }
            black_box(map.len())
        })
    });
    c.bench_function("std_hash_map_churn_4k", |b| {
        b.iter(|| {
            let mut map: HashMap<u64, u32> = HashMap::with_capacity(4096);
            for (i, &k) in keys.iter().enumerate() {
                match map.get_mut(&k) {
                    Some(v) => *v += 1,
                    None => {
                        if map.len() >= 2048 {
                            map.remove(&(k / 2));
                        }
                        map.insert(k, i as u32);
                    }
                }
            }
            black_box(map.len())
        })
    });
}

/// One Figure 4(b)-style point: cold recompute vs answered from the
/// memo. The gap is the whole point of the memoization layer.
fn bench_memoized_sweep(c: &mut Criterion) {
    let config = SlowdownConfig::paper_default();
    c.bench_function("slowdown_point_cold", |b| {
        let memo = ReplayMemo::disabled();
        b.iter(|| {
            black_box(
                estimate_slowdown_with(WorkloadId::Websearch, &config, &memo)
                    .expect("valid config"),
            )
        })
    });
    c.bench_function("slowdown_point_warm", |b| {
        let memo = ReplayMemo::new();
        // Fill the caches once; every iteration after is a pure lookup.
        let _ = estimate_slowdown_with(WorkloadId::Websearch, &config, &memo);
        b.iter(|| {
            black_box(
                estimate_slowdown_with(WorkloadId::Websearch, &config, &memo)
                    .expect("valid config"),
            )
        })
    });
}

criterion_group!(benches, bench_table, bench_memoized_sweep);
criterion_main!(benches);
