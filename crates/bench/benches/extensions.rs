//! Benchmarks of the extension substrates: FTL churn, ensemble blade
//! runs, cluster simulation, and the open-loop driver.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wcs_flashcache::ftl::Ftl;
use wcs_memshare::ensemble::{run_ensemble, ServerConfig};
use wcs_memshare::link::RemoteLink;
use wcs_memshare::policy::PolicyKind;
use wcs_simcore::{SimDuration, SimRng};
use wcs_simserver::{run_open_loop, Cluster, Resource, ServerSpec, Stage};
use wcs_workloads::WorkloadId;

fn bench_ftl_churn(c: &mut Criterion) {
    c.bench_function("ftl_random_overwrite_10k", |b| {
        b.iter(|| {
            let mut ftl = Ftl::new(16, 64, 0.15);
            let n = ftl.logical_pages();
            let mut rng = SimRng::seed_from(3);
            for _ in 0..10_000 {
                ftl.write(rng.index(n as usize) as u32);
            }
            black_box(ftl.write_amplification())
        })
    });
}

fn bench_ensemble(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble");
    group.sample_size(10);
    group.bench_function("four_servers_200k_accesses", |b| {
        b.iter(|| {
            black_box(run_ensemble(
                &[ServerConfig::paper_default(WorkloadId::Websearch); 4],
                RemoteLink::pcie_x4(),
                PolicyKind::Random,
                200_000,
                7,
            ))
        })
    });
    group.finish();
}

fn bench_cluster(c: &mut Criterion) {
    c.bench_function("cluster_8_servers_8k_requests", |b| {
        b.iter(|| {
            let mut src = |rng: &mut SimRng| {
                vec![Stage::new(
                    Resource::Cpu,
                    rng.exp_duration(SimDuration::from_micros(800)),
                )]
            };
            black_box(
                Cluster::ideal(ServerSpec::new(2), 8)
                    .expect("non-empty cluster")
                    .run_closed_loop(&mut src, 32, 500, 8000, 11)
                    .expect("valid run parameters")
                    .throughput_rps(),
            )
        })
    });
}

fn bench_open_loop(c: &mut Criterion) {
    c.bench_function("open_loop_10k_arrivals", |b| {
        b.iter(|| {
            let mut src = |rng: &mut SimRng| {
                vec![Stage::new(
                    Resource::Cpu,
                    rng.exp_duration(SimDuration::from_micros(900)),
                )]
            };
            black_box(
                run_open_loop(ServerSpec::new(2), &mut src, 1500.0, 500, 10_000, 13)
                    .throughput_rps(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_ftl_churn,
    bench_ensemble,
    bench_cluster,
    bench_open_loop
);
criterion_main!(benches);
