//! Microbenchmarks of the simulation substrate: event queue, Zipf
//! sampling, histogram recording.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wcs_simcore::dist::{Distribution, Zipf};
use wcs_simcore::stats::Histogram;
use wcs_simcore::{EventQueue, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos(rng.next_u64() % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    c.bench_function("event_queue_presized_push_pop_1k", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1000);
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos(rng.next_u64() % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    // The dispatch idiom the cluster engine leans on: pop an event, then
    // schedule its follow-up at the very same timestamp — the immediate
    // buffer turns the second half into a VecDeque push.
    c.bench_function("event_queue_same_instant_pop_push_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(64);
            for i in 0..64u64 {
                q.schedule(SimTime::from_nanos(i * 100), i);
            }
            let mut sum = 0u64;
            let mut hops = 0u32;
            while let Some((t, e)) = q.pop() {
                sum = sum.wrapping_add(e);
                if hops < 1000 {
                    hops += 1;
                    q.schedule(t, e ^ hops as u64);
                }
            }
            black_box(sum)
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(500_000, 0.9).unwrap();
    let mut rng = SimRng::seed_from(2);
    c.bench_function("zipf_sample_500k_ranks", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut h = Histogram::new();
    let mut rng = SimRng::seed_from(3);
    c.bench_function("histogram_record", |b| {
        b.iter(|| h.record(black_box(rng.uniform() * 0.5)))
    });
    for i in 0..100_000 {
        h.record((i as f64).sqrt() * 1e-4);
    }
    c.bench_function("histogram_p95_query", |b| {
        b.iter(|| black_box(h.percentile(95.0)))
    });
}

criterion_group!(benches, bench_event_queue, bench_zipf, bench_histogram);
criterion_main!(benches);
