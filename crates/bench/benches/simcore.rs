//! Microbenchmarks of the simulation substrate: event queue, Zipf
//! sampling, histogram recording.

use std::rc::Rc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wcs_simcore::dist::{Distribution, Zipf};
use wcs_simcore::stats::Histogram;
use wcs_simcore::{EpochArena, EventQueue, QueueKind, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos(rng.next_u64() % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    c.bench_function("event_queue_presized_push_pop_1k", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1000);
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos(rng.next_u64() % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    // The dispatch idiom the cluster engine leans on: pop an event, then
    // schedule its follow-up at the very same timestamp — the immediate
    // buffer turns the second half into a VecDeque push.
    c.bench_function("event_queue_same_instant_pop_push_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(64);
            for i in 0..64u64 {
                q.schedule(SimTime::from_nanos(i * 100), i);
            }
            let mut sum = 0u64;
            let mut hops = 0u32;
            while let Some((t, e)) = q.pop() {
                sum = sum.wrapping_add(e);
                if hops < 1000 {
                    hops += 1;
                    q.schedule(t, e ^ hops as u64);
                }
            }
            black_box(sum)
        })
    });
}

/// Queue-kind occupancy sweep: the calendar wheel is built for deep
/// queues, the heap for shallow ones, and `auto` should track whichever
/// is better at each depth. Spread scales with depth so slot density
/// (and therefore cascade behaviour) stays representative.
fn bench_queue_kinds(c: &mut Criterion) {
    for &(label, n) in &[("1k", 1_000u64), ("100k", 100_000), ("1m", 1_000_000)] {
        for kind in QueueKind::ALL {
            let name = format!("queue_{}_push_pop_{label}", kind.as_str());
            c.bench_function(&name, |b| {
                let mut rng = SimRng::seed_from(42);
                let spread = n * 1_000;
                b.iter(|| {
                    let mut q = EventQueue::with_capacity_and_kind(n as usize, kind);
                    for i in 0..n {
                        q.schedule(SimTime::from_nanos(rng.next_u64() % spread), i);
                    }
                    let mut sum = 0u64;
                    while let Some((_, e)) = q.pop() {
                        sum = sum.wrapping_add(e);
                    }
                    black_box(sum)
                })
            });
        }
    }
}

/// Arena bump-copy vs the `Rc<[u64]>` per-payload allocation it replaced
/// in the cluster engine's event payloads.
fn bench_arena(c: &mut Criterion) {
    let stages: Vec<u64> = (0..4).collect();
    c.bench_function("payload_rc_from_slice", |b| {
        b.iter(|| {
            let rc: Rc<[u64]> = Rc::from(black_box(stages.as_slice()));
            black_box(rc)
        })
    });
    c.bench_function("payload_arena_alloc_copy", |b| {
        let mut arena: EpochArena<u64> = EpochArena::with_capacity(1 << 16);
        let mut n = 0u32;
        b.iter(|| {
            if arena.len() + stages.len() > (1 << 16) {
                arena.reset();
            }
            n = n.wrapping_add(1);
            black_box(arena.alloc_copy(black_box(stages.as_slice())))
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(500_000, 0.9).unwrap();
    let mut rng = SimRng::seed_from(2);
    c.bench_function("zipf_sample_500k_ranks", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut h = Histogram::new();
    let mut rng = SimRng::seed_from(3);
    c.bench_function("histogram_record", |b| {
        b.iter(|| h.record(black_box(rng.uniform() * 0.5)))
    });
    for i in 0..100_000 {
        h.record((i as f64).sqrt() * 1e-4);
    }
    c.bench_function("histogram_p95_query", |b| {
        b.iter(|| black_box(h.percentile(95.0)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_queue_kinds,
    bench_arena,
    bench_zipf,
    bench_histogram
);
criterion_main!(benches);
