//! Benchmarks of the two-level memory simulator (Figure 4's engine):
//! trace replay throughput per replacement policy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wcs_memshare::policy::PolicyKind;
use wcs_memshare::twolevel::TwoLevelSim;
use wcs_workloads::memtrace::{params_for, MemTraceGen};
use wcs_workloads::WorkloadId;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("twolevel_replay_100k");
    for policy in [PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut sim = TwoLevelSim::new(131_072, policy, 7);
                    let mut gen = MemTraceGen::new(params_for(WorkloadId::Websearch), 9);
                    black_box(sim.run(&mut gen, 100_000))
                })
            },
        );
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("memtrace_generate_100k", |b| {
        b.iter(|| {
            let mut gen = MemTraceGen::new(params_for(WorkloadId::Ytube), 11);
            black_box(gen.take_vec(100_000).len())
        })
    });
}

criterion_group!(benches, bench_policies, bench_trace_generation);
criterion_main!(benches);
