//! Benchmarks of the deterministic thread pool: fan-out overhead and
//! scaling on simulation-shaped work.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wcs_simcore::{SimRng, ThreadPool};

/// A simulation-shaped task: burn a deterministic amount of RNG work.
fn task(seed: u64, stream: u64) -> u64 {
    let mut rng = SimRng::stream(seed, stream);
    let mut acc = 0u64;
    for _ in 0..20_000 {
        acc = acc.wrapping_add(rng.next_u64());
    }
    acc
}

fn bench_par_map(c: &mut Criterion) {
    let items: Vec<u64> = (0..64).collect();
    c.bench_function("par_map_64_tasks_serial", |b| {
        let pool = ThreadPool::serial();
        b.iter(|| black_box(pool.par_map(&items, |i, _| task(42, i as u64))))
    });
    c.bench_function("par_map_64_tasks_available", |b| {
        let pool = ThreadPool::available();
        b.iter(|| black_box(pool.par_map(&items, |i, _| task(42, i as u64))))
    });
    // Fan-out overhead floor: trivial tasks, so scope+slot cost dominates.
    c.bench_function("par_map_64_trivial_tasks_available", |b| {
        let pool = ThreadPool::available();
        b.iter(|| black_box(pool.par_map(&items, |i, &x| x.wrapping_mul(i as u64))))
    });
}

criterion_group!(benches, bench_par_map);
criterion_main!(benches);
