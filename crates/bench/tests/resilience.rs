//! Resilience-layer properties: the disabled layer is invisible
//! (pinned against a pre-PR render fixture), the enabled layer is
//! thread-count invariant, and the retry budget is never exceeded under
//! any seeded fault/traffic combination.

use wcs_core::{ChaosPlan, DesignPoint, Evaluator, ResilienceSpec, ScenarioEval};
use wcs_simcore::faults::FaultProcess;
use wcs_simcore::{SimDuration, SimRng};
use wcs_simserver::{
    run_open_loop_resilient, AdmissionConfig, BreakerConfig, RateProfile, RequestSource,
    ResilienceConfig, Resource, RetryBudgetConfig, RetryPolicy, ServerSpec, Stage,
};
use wcs_workloads::{ScenarioSpec, TrafficPack};

/// Exponential CPU-only requests, mean 800 µs — ~80% utilization at
/// 1000 RPS on two cores.
struct ExpSource;
impl RequestSource for ExpSource {
    fn next_request(&mut self, rng: &mut SimRng) -> Vec<Stage> {
        vec![Stage::new(
            Resource::Cpu,
            rng.exp_duration(SimDuration::from_micros(800)),
        )]
    }
}

/// The scenarios bin's default slate, verbatim.
fn default_slate() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::steady("faas"),
        ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd()),
        ScenarioSpec::steady("dag-analytics"),
        ScenarioSpec::steady("dag-analytics").with_traffic(TrafficPack::diurnal()),
        ScenarioSpec::steady("websearch").with_traffic(TrafficPack::flash_crowd()),
    ]
}

fn run_slate(eval: &Evaluator) -> Vec<ScenarioEval> {
    let designs = [DesignPoint::baseline_srvr1(), DesignPoint::n2()];
    let specs = default_slate();
    let mut all = Vec::new();
    for design in &designs {
        all.extend(eval.evaluate_scenarios(design, &specs).unwrap());
    }
    all
}

/// FNV-1a over a render (the scenarios bin's checksum function).
fn fnv64(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325_u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// Without a resilience spec, the full scenarios-bin slate renders
/// byte-identically to the build that predates the resilience layer —
/// the checksum was captured by running the pre-PR `scenarios` binary.
#[test]
fn disabled_resilience_pins_the_pre_pr_fixture() {
    let eval = Evaluator::builder().quick().build().unwrap();
    let render = format!("{:?}", run_slate(&eval));
    assert_eq!(
        fnv64(&render),
        0xe9f6631693645ce4,
        "disabled resilience must not perturb pre-PR renders"
    );
}

/// The enabled layer is a pure function of the spec: bit-identical
/// across thread counts and memo settings.
#[test]
fn resilient_slate_is_thread_count_invariant() {
    let render = |threads: usize, memo: bool| {
        let eval = Evaluator::builder()
            .quick()
            .threads(threads)
            .unwrap()
            .memo(memo)
            .resilience(ResilienceSpec::standard())
            .build()
            .unwrap();
        format!("{:?}", run_slate(&eval))
    };
    let want = render(1, true);
    assert!(want.contains("resilience"), "layer must be active");
    assert_eq!(want, render(2, true), "2 threads drifted from serial");
    assert_eq!(want, render(8, false), "8 threads / memo off drifted");
}

/// Property: across seeds, fault plans, and traffic shapes, the retry
/// budget's spend never exceeds its accrual ceiling
/// (`initial + ratio * offered`), so retry amplification stays bounded
/// no matter how faults and overload align.
#[test]
fn retry_budget_is_never_exceeded_under_any_seeded_combination() {
    let spec = ServerSpec::new(2);
    let flash = RateProfile::new(
        SimDuration::from_secs_f64(2.0),
        vec![1.0, 1.0, 3.0, 3.0, 1.0],
    );
    let steady = RateProfile::constant();
    let budget = RetryBudgetConfig {
        ratio: 0.05,
        initial: 4.0,
        cap: 32.0,
    };
    let config = ResilienceConfig {
        admission: Some(AdmissionConfig {
            rate_rps: 1100.0,
            burst: 64.0,
            low_reserve: 8.0,
            low_fraction: 0.2,
        }),
        retry_budget: Some(budget),
        breaker: Some(BreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_millis(40),
            jitter: 0.2,
            half_open_probes: 2,
        }),
    };
    let retry = RetryPolicy {
        timeout: None,
        max_retries: 6,
        backoff: SimDuration::from_millis(1),
    };
    for seed in [1u64, 7, 42, 1234] {
        for (mttf_ms, mttr_ms) in [(400.0, 60.0), (1500.0, 250.0)] {
            for profile in [&steady, &flash] {
                let process = FaultProcess::exponential(
                    SimDuration::from_secs_f64(mttf_ms / 1e3),
                    SimDuration::from_secs_f64(mttr_ms / 1e3),
                )
                .unwrap();
                let mut frng = SimRng::stream(seed ^ 0xFA17, 3);
                let outages = process.windows(SimDuration::from_secs_f64(20.0), &mut frng);
                let mut source = ExpSource;
                let (_, res) = run_open_loop_resilient(
                    spec,
                    &mut source,
                    1000.0,
                    profile,
                    500,
                    3000,
                    seed,
                    &outages,
                    &retry,
                    &config,
                );
                let ceiling = budget.initial + budget.ratio * res.offered as f64;
                assert!(
                    (res.retries_spent as f64) <= ceiling,
                    "seed {seed} mttf {mttf_ms}: spent {} > ceiling {ceiling}",
                    res.retries_spent
                );
                assert_eq!(res.offered, res.admitted + res.shed(), "conservation");
            }
        }
    }
}

/// A co-varying chaos wave under the flash crowd keeps amplification
/// within the configured budget end-to-end through the evaluator, and
/// availability/shed/goodput all land in the eval.
#[test]
fn flash_crowd_plus_blade_fault_stays_within_budget_end_to_end() {
    let rspec = ResilienceSpec {
        chaos: Some(ChaosPlan::blade_fault()),
        ..ResilienceSpec::standard()
    };
    let eval = Evaluator::builder()
        .quick()
        .resilience(rspec)
        .build()
        .unwrap();
    let design = DesignPoint::n2();
    let spec = ScenarioSpec::steady("websearch").with_traffic(TrafficPack::flash_crowd());
    let s = eval.evaluate_scenario(&design, &spec).unwrap();
    let r = s.resilience.expect("resilience eval present");
    let ceiling = 8.0 + rspec.retry_ratio.unwrap() * r.offered as f64;
    assert!(
        (r.retries_spent as f64) <= ceiling,
        "spent {} > ceiling {ceiling}",
        r.retries_spent
    );
    assert!(r.goodput_rps > 0.0);
    assert!((0.0..=1.0).contains(&r.availability));
    assert!((0.0..=1.0).contains(&r.shed_fraction));
    assert!((0.0..=1.0).contains(&r.slo_attainment));
}
