//! Memoization soundness: memo-on and memo-off runs must produce
//! byte-identical results, at any thread count, and warm reruns must be
//! answered from the caches without changing a bit.
//!
//! The workspace's guarantee is that every cached value is a pure
//! function of its key — all inputs, including RNG seeds, are folded
//! into the key — so the caches are a wall-clock optimization only.
//! These tests pin that property for the drivers the bench binaries are
//! built on: the CPU and unified studies, the design-space sweeps, the
//! Table 3(b) disk study, and the Figure 4(b) memory study.

use wcs_core::evaluate::Evaluator;
use wcs_core::experiments::{cpu_study, memory_study_with, run_disk_study_with, unified_study};
use wcs_core::sweeps::{sweep_flash_capacity, sweep_local_fraction};
use wcs_flashcache::memo::StorageMemo;
use wcs_memshare::slowdown::ReplayMemo;
use wcs_platforms::PlatformId;
use wcs_workloads::perf::MeasureConfig;

/// Renders the memo-sensitive studies and sweeps under one evaluator.
fn studies_and_sweeps(eval: &Evaluator) -> String {
    let study = cpu_study(eval).expect("catalog platforms evaluate");
    let (n1, n2) = unified_study(eval, PlatformId::Srvr1).expect("designs evaluate");
    let local = sweep_local_fraction(eval, &[0.25, 0.125]).expect("sweep evaluates");
    let flash = sweep_flash_capacity(eval, &[0.5, 2.0]).expect("sweep evaluates");
    format!(
        "{:?}\n{n1:?}\n{n2:?}\n{local:?}\n{flash:?}",
        study.comparisons
    )
}

#[test]
fn memoized_studies_match_cold_at_any_thread_count() {
    let cold = {
        let eval = Evaluator::builder().quick().memo(false).build().unwrap();
        studies_and_sweeps(&eval)
    };
    for threads in [1, 8] {
        let eval = Evaluator::builder()
            .quick()
            .threads(threads)
            .unwrap()
            .memo(true)
            .build()
            .unwrap();
        let warm_fill = studies_and_sweeps(&eval);
        assert_eq!(cold, warm_fill, "{threads}-thread memoized run diverged");
        // Everything is cached now: a rerun must hit and stay identical.
        let rerun = studies_and_sweeps(&eval);
        assert_eq!(cold, rerun, "{threads}-thread warm rerun diverged");
        let stats = eval.memo.stats();
        assert!(stats.hit_rate() > 0.0, "warm rerun never hit: {stats:?}");
    }
}

#[test]
fn memoized_disk_study_matches_cold() {
    let cfg = MeasureConfig::quick();
    let cold = format!("{:?}", run_disk_study_with(&cfg, &StorageMemo::disabled()));
    let memo = StorageMemo::new();
    let first = format!("{:?}", run_disk_study_with(&cfg, &memo));
    let warm = format!("{:?}", run_disk_study_with(&cfg, &memo));
    assert_eq!(cold, first, "memoized disk study diverged");
    assert_eq!(cold, warm, "warm disk study diverged");
    assert!(memo.stats().hits > 0);
}

#[test]
fn memoized_memory_study_matches_cold() {
    for fraction in [0.25, 0.125] {
        let cold = format!("{:?}", memory_study_with(fraction, &ReplayMemo::disabled()));
        let memo = ReplayMemo::new();
        let first = format!("{:?}", memory_study_with(fraction, &memo));
        let warm = format!("{:?}", memory_study_with(fraction, &memo));
        assert_eq!(cold, first, "memoized memory study diverged at {fraction}");
        assert_eq!(cold, warm, "warm memory study diverged at {fraction}");
        // PCIe and CBF share replays even on the first pass.
        assert!(memo.stats().hits > 0, "{:?}", memo.stats());
    }
}
