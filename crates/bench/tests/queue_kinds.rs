//! Queue-kind invariance: the heap, calendar, and auto schedulers must
//! produce bit-identical simulation results at every thread count, with
//! memoization on or off.
//!
//! All three lanes of the event queue pop one total order — `(when,
//! seq)` — so swapping the scheduler is a wall-clock dial, never a
//! results dial. These tests pin that end to end through the study
//! drivers and the fault-aware cluster engine.
//!
//! This lives in its own integration-test binary on purpose: it flips
//! the *process-wide* default queue kind, and no other test binary may
//! observe the flip. Within this file everything runs under one `#[test]`
//! so the global is never toggled concurrently.

use wcs_core::evaluate::Evaluator;
use wcs_core::experiments::cpu_study;
use wcs_simcore::event::set_default_queue_kind;
use wcs_simcore::faults::FaultProcess;
use wcs_simcore::{QueueKind, SimDuration, SimRng};
use wcs_simserver::{Cluster, ClusterFaults, Resource, RetryPolicy, RunStats, ServerSpec, Stage};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

/// A `RunStats` fingerprint over every field required to be invariant
/// across queue kinds. `queue.calendar_hits` and `queue.heap_fallbacks`
/// are deliberately excluded: they describe which lane did the work (a
/// property of the scheduler, exact per kind), not what the simulation
/// computed.
fn fingerprint(stats: &RunStats) -> String {
    format!(
        "{} {} {:?} {:?} {:?} scheduled={} fast_path={} max_depth={}",
        stats.completed,
        stats.window.as_nanos(),
        stats.latency,
        stats.utilization,
        stats.faults,
        stats.queue.scheduled,
        stats.queue.fast_path,
        stats.queue.max_depth,
    )
}

/// One fault-aware cluster run: retries, timeouts, and a flapping
/// outage plan drive the queue through all three lanes (the retry
/// backoffs land far ahead of the clock, the dispatch ties exercise the
/// immediate buffer).
fn faulted_run() -> RunStats {
    let cluster = Cluster::ideal(ServerSpec::new(2), 8).expect("non-empty cluster");
    let retry =
        RetryPolicy::new(secs(0.008), 3, SimDuration::from_millis(2)).expect("positive timeout");
    let flap = FaultProcess::exponential(secs(0.4), secs(0.02)).expect("positive rates");
    let plan = ClusterFaults::from_processes(&vec![flap; 8], secs(2.0), 23);
    let mut source = |rng: &mut SimRng| {
        vec![Stage::new(
            Resource::Cpu,
            rng.exp_duration(SimDuration::from_micros(800)),
        )]
    };
    cluster
        .run_closed_loop_faulted(&mut source, 32, 1_000, 8_000, 17, &plan, &retry)
        .expect("valid run parameters")
}

#[test]
fn results_are_queue_kind_invariant() {
    let mut reference: Option<(String, String, String)> = None;
    for kind in QueueKind::ALL {
        set_default_queue_kind(kind);
        for threads in THREAD_COUNTS {
            let study = |memo: bool| -> String {
                let eval = Evaluator::builder()
                    .quick()
                    .memo(memo)
                    .threads(threads)
                    .unwrap()
                    .build()
                    .unwrap();
                let study = cpu_study(&eval).expect("catalog platforms evaluate");
                format!("{:?}", study.comparisons)
            };
            let probe = (study(true), study(false), fingerprint(&faulted_run()));
            match &reference {
                None => reference = Some(probe),
                Some(r) => {
                    assert_eq!(r.0, probe.0, "{kind} x {threads} threads drifted (memo on)");
                    assert_eq!(
                        r.1, probe.1,
                        "{kind} x {threads} threads drifted (memo off)"
                    );
                    assert_eq!(r.2, probe.2, "{kind} x {threads} threads drifted (faulted)");
                }
            }
        }
    }
    // Leave the process default where the suite found it.
    set_default_queue_kind(QueueKind::default());
}

#[test]
fn forced_kinds_agree_on_the_fault_engine_without_the_global() {
    // Belt and braces for the global-free path: build queues of each
    // kind explicitly and replay the same schedule script.
    use wcs_simcore::{EventQueue, SimTime};
    let script: Vec<(u64, u64)> = {
        let mut rng = SimRng::seed_from(7);
        (0..5_000u64)
            .map(|i| (rng.next_u64() % (1 << 34), i))
            .collect()
    };
    let drain = |kind: QueueKind| -> Vec<(u64, u64)> {
        let mut q = EventQueue::with_kind(kind);
        for &(t, p) in &script {
            q.schedule(SimTime::from_nanos(t), p);
        }
        let mut out = Vec::new();
        while let Some((t, p)) = q.pop() {
            out.push((t.as_nanos(), p));
        }
        out
    };
    let heap = drain(QueueKind::Heap);
    assert_eq!(heap, drain(QueueKind::Calendar));
    assert_eq!(heap, drain(QueueKind::Auto));
}
