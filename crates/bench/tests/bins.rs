//! Smoke tests: every figure/table binary runs and prints its anchors.
//!
//! These protect the regeneration harness itself — a binary that panics
//! or silently drops a section would otherwise only be noticed manually.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    assert!(out.status.success(), "{bin} exited with {:?}", out.status);
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn table1_prints_suite() {
    let s = run(env!("CARGO_BIN_EXE_table1"), &[]);
    for needle in [
        "websearch",
        "webmail",
        "ytube",
        "mapred-wc",
        "mapred-wr",
        "QoS",
    ] {
        assert!(s.contains(needle), "missing {needle}");
    }
}

#[test]
fn fig1_prints_exact_totals() {
    let s = run(env!("CARGO_BIN_EXE_fig1"), &[]);
    assert!(s.contains("5758"), "srvr1 total");
    assert!(s.contains("3249") || s.contains("3250"), "srvr2 total");
    assert!(s.contains("K1 / L1 / K2"));
}

#[test]
fn table2_prints_six_platforms() {
    let s = run(env!("CARGO_BIN_EXE_table2"), &[]);
    for p in ["srvr1", "srvr2", "desk", "mobl", "emb1", "emb2"] {
        assert!(s.contains(p), "missing {p}");
    }
    assert!(s.contains("3294"), "srvr1 Inf-$ with switch share");
}

#[test]
fn fig3_prints_density_and_gains() {
    let s = run(env!("CARGO_BIN_EXE_fig3"), &[]);
    assert!(s.contains("320"));
    assert!(s.contains("1280"));
    assert!(s.contains("PUE"));
    assert!(s.contains("heat pipe"));
}

#[test]
fn fig4_prints_slowdown_rows() {
    let s = run(env!("CARGO_BIN_EXE_fig4"), &[]);
    assert!(s.contains("PCIe x4"));
    assert!(s.contains("CBF"));
    assert!(s.contains("static"));
    assert!(s.contains("dynamic"));
}

#[test]
fn ensemble_prints_contention_table() {
    let s = run(env!("CARGO_BIN_EXE_ensemble"), &[]);
    assert!(s.contains("link util"));
    assert!(s.contains("DRAM/flash hybrid"));
    assert!(s.contains("page sharing"));
}

#[test]
fn fig5_rejects_unknown_baseline() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig5"))
        .arg("nonsense")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn faults_degrades_gracefully_and_reproduces() {
    let s = run(env!("CARGO_BIN_EXE_faults"), &[]);
    // Every scenario section printed — the run survived all injected
    // failures without panicking.
    for needle in [
        "fail-free",
        "single blade failure",
        "link flap",
        "blade-down",
        "Fan-wall failure",
        "Availability-adjusted Figure 5",
    ] {
        assert!(s.contains(needle), "missing {needle}");
    }
    // Retries/timeouts surfaced in the fault counters, and degraded
    // goodput stayed nonzero (graceful, not dead).
    assert!(s.contains("retries"));
    // Same seeds -> bit-identical output on a second invocation.
    let again = run(env!("CARGO_BIN_EXE_faults"), &[]);
    assert_eq!(s, again, "faults bin must be deterministic");
}

#[test]
fn faults_output_is_thread_count_invariant() {
    let serial = run(env!("CARGO_BIN_EXE_faults"), &["--threads", "1"]);
    let parallel = run(env!("CARGO_BIN_EXE_faults"), &["--threads", "8"]);
    assert_eq!(serial, parallel, "--threads must only change wall-clock");
}

#[test]
fn perfsmoke_writes_results_json() {
    let dir = std::env::temp_dir().join(format!("wcs-perfsmoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let out = Command::new(env!("CARGO_BIN_EXE_perfsmoke"))
        .args(["--threads", "2"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "perfsmoke exited with {:?}",
        out.status
    );
    let json = std::fs::read_to_string(dir.join("BENCH_results.json")).expect("results written");
    for needle in [
        "\"threads\": 2",
        "cpu_study_quick",
        "events_per_sec",
        "wall_ms",
        "\"memo\"",
        "\"enabled\": true",
        "hit_rate",
        "sweep_cold_ms",
        "sweep_warm_ms",
        "speedup",
        // perfsmoke aborts before writing results if the memoized sweep
        // output differs from cold recomputation by even one byte.
        "\"diverged\": false",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenarios_bin_runs_packs_and_rejects_unknown_names() {
    let dir = std::env::temp_dir().join(format!("wcs-scenarios-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let out = Command::new(env!("CARGO_BIN_EXE_scenarios"))
        .args(["--threads", "2"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "scenarios exited with {:?}",
        out.status
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The default slate covers both new families and a paper workload
    // under a pack, and the built-in determinism gate reported identity
    // (the bin aborts before writing results otherwise).
    for needle in [
        "faas/flash-crowd",
        "dag-analytics/diurnal",
        "websearch/flash-crowd",
        "byte-identical",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in {stdout}");
    }
    let json =
        std::fs::read_to_string(dir.join("SCENARIOS_results.json")).expect("results written");
    assert!(json.contains("\"diverged\": false"), "{json}");

    // An unknown scenario name is a usage error (exit 2) whose message
    // lists every registered scenario.
    let out = Command::new(env!("CARGO_BIN_EXE_scenarios"))
        .args(["--scenario", "nope"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "unknown scenario must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scenario workload"), "{stderr}");
    assert!(
        stderr.contains("dag-analytics") && stderr.contains("websearch"),
        "error must list registered scenarios: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_proves_resume_and_isolation() {
    let dir = std::env::temp_dir().join(format!("wcs-chaos-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let out = Command::new(env!("CARGO_BIN_EXE_chaos"))
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "chaos exited with {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "kill at 25%/60%",
        "byte-identical",
        "panic isolation",
        "DEGRADED",
        "watchdog deadlines",
        "all waves passed",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in {stdout}");
    }
    let json = std::fs::read_to_string(dir.join("BENCH_results.json")).expect("results written");
    // The chaos bin asserts byte-identity before writing results, so the
    // file existing with this line is the proof CI greps for.
    assert!(json.contains("\"resume_diverged\": false"), "{json}");
    for needle in [
        "\"cells_replayed\"",
        "\"task_panics\"",
        "\"task_retries\"",
        "\"deadline_cancels\"",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweeps_resume_round_trip_is_identical() {
    let path = std::env::temp_dir().join(format!("wcs-sweeps-resume-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let journal = path.to_str().expect("utf-8 temp path");
    let first = run(env!("CARGO_BIN_EXE_sweeps"), &["--resume", journal]);
    assert!(
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0) > 0,
        "first run must write the journal"
    );
    // Second run replays every cell from the journal; the printed sweep
    // must be byte-identical, with or without the in-process memo.
    let resumed = run(env!("CARGO_BIN_EXE_sweeps"), &["--resume", journal]);
    assert_eq!(first, resumed, "resumed sweeps output diverged");
    let no_memo = run(
        env!("CARGO_BIN_EXE_sweeps"),
        &["--resume", journal, "--no-memo", "--threads", "2"],
    );
    assert_eq!(first, no_memo, "--no-memo --resume output diverged");
    std::fs::remove_file(&path).ok();
}

#[test]
fn bins_reject_bad_resume_journals() {
    // A file that is not a journal must be a clean, explained exit —
    // not a panic (satellite: no raw unwraps on the build path).
    let path = std::env::temp_dir().join(format!("wcs-notajournal-{}", std::process::id()));
    std::fs::write(&path, b"definitely not a journal").expect("temp file writes");
    let out = Command::new(env!("CARGO_BIN_EXE_sweeps"))
        .args(["--resume", path.to_str().expect("utf-8 temp path")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "bad journal must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot construct evaluator"),
        "expected a graceful error, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "bad journal must not panic: {stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn bins_reject_malformed_thread_counts() {
    let out = Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(["--threads", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "zero threads must be rejected");
}
