//! End-to-end tests for the `wcs-served` sweep service binary: spawn the
//! real supervisor, let it shard real worker processes, and check the
//! crash-tolerance contract from the outside (exit codes, the
//! verification results file, the byte-identity gate).

use std::path::PathBuf;
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wcs-service-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn served(dir: &PathBuf, extra: &[&str]) -> (std::process::Output, String) {
    let results = dir.join("SERVICE_results.json");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_wcs-served"));
    cmd.arg("--plan-cells")
        .arg("4")
        .arg("--verify")
        .arg("--dir")
        .arg(dir)
        .arg("--out")
        .arg(dir.join("canonical.journal"))
        .arg("--results")
        .arg(&results)
        .args(extra);
    let output = cmd.output().expect("wcs-served spawns");
    let json = std::fs::read_to_string(&results).unwrap_or_default();
    (output, json)
}

#[test]
fn clean_run_verifies_byte_identity() {
    let dir = scratch("clean");
    let (output, json) = served(&dir, &["--workers", "2"]);
    assert!(
        output.status.success(),
        "wcs-served failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(json.contains("\"merge_diverged\": false"), "{json}");
    assert!(json.contains("\"resume_diverged\": false"), "{json}");
    assert!(json.contains("\"worker_spawns\": 2"), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_kill_still_merges_byte_identical() {
    let dir = scratch("chaos");
    let (output, json) = served(&dir, &["--workers", "2", "--kill-at", "0.25"]);
    assert!(
        output.status.success(),
        "wcs-served failed under chaos:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(json.contains("\"merge_diverged\": false"), "{json}");
    assert!(json.contains("\"resume_diverged\": false"), "{json}");
    // The kill must have been observed and its cells stolen by a respawn.
    assert!(!json.contains("\"worker_kills_observed\": 0"), "{json}");
    assert!(!json.contains("\"worker_cells_stolen\": 0"), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_flags_exit_with_usage_code() {
    let output = Command::new(env!("CARGO_BIN_EXE_wcs-served"))
        .arg("--workers")
        .arg("zero")
        .output()
        .expect("wcs-served spawns");
    assert_eq!(output.status.code(), Some(2), "usage errors exit 2");

    let output = Command::new(env!("CARGO_BIN_EXE_wcs-served"))
        .arg("--service-worker")
        .arg("--cells")
        .arg("0..2")
        .output()
        .expect("worker mode spawns");
    assert_eq!(
        output.status.code(),
        Some(2),
        "a worker without --journal is a usage error:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn worker_with_closed_stdin_shuts_down_gracefully() {
    // Closing the worker's stdin is the drain signal: it must seal its
    // journal and exit with the graceful code (3), not an error.
    let dir = scratch("graceful");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let journal = dir.join("worker-0.journal");
    let output = Command::new(env!("CARGO_BIN_EXE_wcs-served"))
        .arg("--service-worker")
        .arg("--journal")
        .arg(&journal)
        .arg("--worker-id")
        .arg("0")
        .arg("--cells")
        .arg("0..2")
        .arg("--plan-cells")
        .arg("2")
        .output() // output() closes stdin immediately
        .expect("worker spawns");
    assert_eq!(
        output.status.code(),
        Some(3),
        "stdin-close must exit graceful:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let (_, report) = wcs_simcore::journal::replay(&journal).expect("journal replays");
    assert_eq!(report.truncated_bytes, 0, "graceful exit seals the journal");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_without_supervisor_completes_its_cells() {
    // The worker protocol is plain argv + a journal file: run one
    // directly, then check the journal carries its lease, results, and
    // completion markers.
    let dir = scratch("solo-worker");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let journal = dir.join("worker-0.journal");
    // Hold the worker's stdin open for its whole run, as the supervisor
    // does — a closed stdin is the graceful-shutdown signal.
    let mut child = Command::new(env!("CARGO_BIN_EXE_wcs-served"))
        .arg("--service-worker")
        .arg("--journal")
        .arg(&journal)
        .arg("--worker-id")
        .arg("0")
        .arg("--attempt")
        .arg("0")
        .arg("--seed")
        .arg("42")
        .arg("--plan-cells")
        .arg("2")
        .arg("--cells")
        .arg("0..2")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("worker spawns");
    let stdin = child.stdin.take();
    let output = child.wait_with_output().expect("worker runs");
    drop(stdin);
    assert!(
        output.status.success(),
        "worker failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let (records, report) = wcs_simcore::journal::replay(&journal).expect("journal replays");
    assert_eq!(report.truncated_bytes, 0, "clean exit seals the journal");
    let service: Vec<_> = records
        .iter()
        .filter_map(|r| wcs_simcore::service::ServiceRecord::decode(&r.payload))
        .collect();
    use wcs_simcore::service::ServiceRecord;
    assert!(
        service.contains(&ServiceRecord::Lease {
            worker: 0,
            start: 0,
            end: 2,
            attempt: 0
        }),
        "{service:?}"
    );
    assert!(
        service.contains(&ServiceRecord::CellDone { cell: 0 }),
        "{service:?}"
    );
    assert!(
        service.contains(&ServiceRecord::CellDone { cell: 1 }),
        "{service:?}"
    );
    assert!(
        records.len() > service.len(),
        "the journal must also carry result records"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
