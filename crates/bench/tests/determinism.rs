//! Thread-count invariance: every study must produce bit-identical
//! results at 1, 2, and 8 worker threads.
//!
//! The workspace's guarantee is that `--threads` is a wall-clock dial
//! only — every parallel task seeds its RNG stream purely from the task
//! identity (design, workload, server index), never from scheduling
//! order. These tests pin that property for the three drivers the bench
//! binaries are built on: the Figure 2(c) CPU study, the Figure 5
//! unified study, and the fault-scenario runs.

use wcs_core::evaluate::Evaluator;
use wcs_core::experiments::{cpu_study, unified_study};
use wcs_platforms::PlatformId;
use wcs_simcore::faults::{FaultInjector, FaultProcess};
use wcs_simcore::pool::Task;
use wcs_simcore::{SimDuration, SimRng, SimTime, ThreadPool};
use wcs_simserver::{Cluster, ClusterFaults, Resource, RetryPolicy, RunStats, ServerSpec, Stage};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

#[test]
fn cpu_study_is_thread_count_invariant() {
    let renders: Vec<String> = THREAD_COUNTS
        .map(|t| {
            let eval = Evaluator::builder()
                .quick()
                .threads(t)
                .unwrap()
                .build()
                .unwrap();
            let study = cpu_study(&eval).expect("catalog platforms evaluate");
            format!("{:?}", study.comparisons)
        })
        .to_vec();
    assert_eq!(renders[0], renders[1], "2 threads drifted from serial");
    assert_eq!(renders[0], renders[2], "8 threads drifted from serial");
}

#[test]
fn unified_study_is_thread_count_invariant() {
    let renders: Vec<String> = THREAD_COUNTS
        .map(|t| {
            let eval = Evaluator::builder()
                .quick()
                .threads(t)
                .unwrap()
                .build()
                .unwrap();
            let (n1, n2) = unified_study(&eval, PlatformId::Srvr1).expect("designs evaluate");
            format!("{n1:?} {n2:?}")
        })
        .to_vec();
    assert_eq!(renders[0], renders[1], "2 threads drifted from serial");
    assert_eq!(renders[0], renders[2], "8 threads drifted from serial");
}

/// The faults driver's shape: a wave of independent cluster runs fanned
/// out over the pool, plus a sampled fault trace. `RunStats` carries the
/// full latency histogram, so equal Debug renders mean bit-equal runs.
fn fault_scenarios(pool: ThreadPool) -> (String, u64) {
    let cluster = Cluster::ideal(ServerSpec::new(2), 8).expect("non-empty cluster");
    let retry =
        RetryPolicy::new(secs(0.008), 3, SimDuration::from_millis(2)).expect("positive timeout");
    let run = |faults: &ClusterFaults, retry: &RetryPolicy| {
        let mut source = |rng: &mut SimRng| {
            vec![Stage::new(
                Resource::Cpu,
                rng.exp_duration(SimDuration::from_micros(800)),
            )]
        };
        cluster
            .run_closed_loop_faulted(&mut source, 32, 1_000, 8_000, 17, faults, retry)
            .expect("valid run parameters")
    };
    let flap = FaultProcess::exponential(secs(0.4), secs(0.02)).expect("positive rates");
    let flap_plan = ClusterFaults::from_processes(&vec![flap; 8], secs(2.0), 23);
    let outage = ClusterFaults::single_outage(3, SimTime::ZERO + secs(0.05), secs(0.1));
    let stats = pool.par_tasks(vec![
        Box::new(|| run(&ClusterFaults::fail_free(), &RetryPolicy::none())) as Task<'_, RunStats>,
        Box::new(|| run(&outage, &retry)),
        Box::new(|| run(&flap_plan, &retry)),
        Box::new(|| run(&flap_plan, &RetryPolicy::none())),
    ]);
    let trace = {
        let mut injector = FaultInjector::new();
        for i in 0..8 {
            injector.add(&format!("server-{i}"), flap);
        }
        injector.trace(secs(2.0), 23)
    };
    (format!("{stats:?}"), trace.fingerprint())
}

#[test]
fn fault_scenarios_are_thread_count_invariant() {
    let (serial_stats, serial_trace) = fault_scenarios(ThreadPool::serial());
    for t in [2, 8] {
        let (stats, trace) = fault_scenarios(ThreadPool::new(t).unwrap());
        assert_eq!(serial_stats, stats, "{t}-thread RunStats drifted");
        assert_eq!(serial_trace, trace, "{t}-thread FaultTrace drifted");
    }
}
