//! Cluster-level simulation: many servers behind a load balancer.
//!
//! The paper's performance model "makes the simplifying assumption that
//! cluster-level performance can be approximated by the aggregation of
//! single-machine benchmarks" and flags validation of that assumption as
//! future work (Section 4). This module does the validation: it
//! simulates `n` identical servers behind a dispatcher and compares the
//! cluster's QoS-constrained throughput against `n x` the single-server
//! result, including a configurable scale-out overhead (the Amdahl-style
//! costs the paper lists: bigger data structures, more coordination,
//! higher latency variability).
//!
//! The cluster is also where the availability layer lives
//! ([`run_closed_loop_faulted`](Cluster::run_closed_loop_faulted)):
//! servers go down and come back per a [`ClusterFaults`] plan, the
//! dispatcher fails over around dead servers, and a [`RetryPolicy`]
//! governs per-request timeouts and bounded, backed-off retries. With a
//! fail-free plan and a no-op policy the fault-aware path reproduces the
//! plain run bit for bit.

use std::collections::VecDeque;

use wcs_simcore::stats::Histogram;
#[cfg(test)]
use wcs_simcore::SimDuration;
use wcs_simcore::{ArenaSlice, ConfigError, EpochArena, EventQueue, SimRng, SimTime};

use crate::engine::{RunStats, ServerSpec};
use crate::failover::{ClusterFaults, FaultStats, RetryPolicy};
use crate::request::{RequestSource, Resource, Stage};
use crate::resilience::{CircuitBreaker, ResilienceConfig, ResilienceStats, RetryBudget};

/// Dispatch policy of the front-end load balancer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Dispatch {
    /// Round-robin across servers.
    RoundRobin,
    /// Join the server with the fewest requests in flight.
    LeastLoaded,
    /// Uniformly random server.
    Random,
}

/// A cluster of identical servers behind a dispatcher.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Per-server capacity.
    pub spec: ServerSpec,
    /// Number of servers.
    pub servers: u32,
    /// Dispatch policy.
    pub dispatch: Dispatch,
    /// Fractional per-request demand inflation per doubling of cluster
    /// size (the scale-out overhead: routing, fan-out, bigger metadata).
    pub scaleout_overhead: f64,
}

/// One physical attempt at a logical request.
///
/// Stages live in the run's [`EpochArena`] and attempts carry a `Copy`
/// [`ArenaSlice`] handle: a timeout or crash hands the *same* stage list
/// to the retry event by copying 12 bytes — no refcount traffic, no
/// re-allocating a `Vec` per attempt. Retries and zombie drains are the
/// fault path's hottest allocation site, and the bump arena removes the
/// per-request `Rc<[Stage]>` allocation they used to share.
struct Attempt {
    stages: ArenaSlice,
    next_stage: usize,
    /// First dispatch instant of the *logical* request, so latency spans
    /// retries.
    logical_started: SimTime,
    server: usize,
    /// 0-based attempt index (0 = first try).
    attempt_no: u32,
    /// The client gave up on this attempt (timeout); the work keeps
    /// draining on the server but no longer counts.
    abandoned: bool,
}

/// Cluster-run events.
enum CEv {
    /// A stage finished on a server. `gen` must match the slot's current
    /// generation; otherwise the work was voided by a crash or already
    /// freed.
    Done {
        slot: usize,
        gen: u64,
        server: usize,
        resource: Resource,
    },
    /// A dispatched attempt's timeout expired.
    Timeout { slot: usize, gen: u64 },
    /// A server fails.
    Down { server: usize },
    /// A server finishes repair.
    Up { server: usize },
    /// A backed-off retry re-enters the dispatcher.
    Retry {
        stages: ArenaSlice,
        logical_started: SimTime,
        attempt_no: u32,
    },
}

impl Cluster {
    /// A cluster with no scale-out overhead (the paper's idealized
    /// aggregation assumption).
    ///
    /// # Errors
    /// Rejects an empty cluster.
    pub fn ideal(spec: ServerSpec, servers: u32) -> Result<Self, ConfigError> {
        if servers == 0 {
            return Err(ConfigError::ZeroCount { param: "servers" });
        }
        Ok(Cluster {
            spec,
            servers,
            dispatch: Dispatch::LeastLoaded,
            scaleout_overhead: 0.0,
        })
    }

    /// Demand inflation factor for this cluster size.
    pub fn inflation(&self) -> f64 {
        1.0 + self.scaleout_overhead * (self.servers as f64).log2()
    }

    /// Runs `n_clients` closed-loop clients against the cluster until
    /// `warmup + measured` completions; reports cluster-wide stats.
    ///
    /// Equivalent to
    /// [`run_closed_loop_faulted`](Self::run_closed_loop_faulted) with a
    /// fail-free plan and no-op retry policy — and bit-identical to it.
    ///
    /// # Errors
    /// Rejects zero `n_clients` or zero `measured`.
    pub fn run_closed_loop(
        &self,
        source: &mut dyn RequestSource,
        n_clients: u32,
        warmup: u64,
        measured: u64,
        seed: u64,
    ) -> Result<RunStats, ConfigError> {
        self.run_closed_loop_faulted(
            source,
            n_clients,
            warmup,
            measured,
            seed,
            &ClusterFaults::fail_free(),
            &RetryPolicy::none(),
        )
    }

    /// Runs the closed loop under a fault plan: servers go down and come
    /// back per `faults`, the dispatcher routes around dead servers, and
    /// `retry` governs per-request timeouts and bounded retries.
    ///
    /// Failure semantics:
    ///
    /// * When a server dies, everything queued or in service there fails
    ///   immediately (fail-fast); each failed request retries after
    ///   backoff if budget remains, else it is dropped and its client
    ///   moves on.
    /// * When an attempt times out, the client abandons it and retries
    ///   (or drops), but the server keeps draining the zombie work —
    ///   the wasted-work effect of real datacenter timeouts.
    /// * While every server is down, new work parks at the dispatcher
    ///   and re-enters on the next repair.
    ///
    /// If faults prevent the run from ever reaching `warmup + measured`
    /// completions, the run ends when no events remain (after the last
    /// scheduled repair) and reports whatever completed — degraded, not
    /// panicking.
    ///
    /// # Errors
    /// Rejects zero `n_clients` or `measured`, and a fault plan that
    /// names more servers than the cluster has.
    #[allow(clippy::too_many_arguments)]
    pub fn run_closed_loop_faulted(
        &self,
        source: &mut dyn RequestSource,
        n_clients: u32,
        warmup: u64,
        measured: u64,
        seed: u64,
        faults: &ClusterFaults,
        retry: &RetryPolicy,
    ) -> Result<RunStats, ConfigError> {
        self.run_closed_loop_resilient(
            source,
            n_clients,
            warmup,
            measured,
            seed,
            faults,
            retry,
            &ResilienceConfig::disabled(),
        )
        .map(|(stats, _)| stats)
    }

    /// [`run_closed_loop_faulted`](Self::run_closed_loop_faulted) with an
    /// overload-resilience layer: a global [`RetryBudget`] gates every
    /// retry the [`RetryPolicy`] would otherwise grant unconditionally,
    /// and per-server [`CircuitBreaker`]s steer the dispatcher away from
    /// backends on a failure streak (admission control lives at the
    /// open-loop entry — see
    /// [`run_open_loop_resilient`](crate::run_open_loop_resilient) — not
    /// here, where closed-loop clients self-limit).
    ///
    /// When every live server's breaker refuses, the dispatcher routes
    /// anyway (counted in
    /// [`breaker_fast_fails`](ResilienceStats::breaker_fast_fails)):
    /// breakers are overload protection, and parking behind them would
    /// deadlock a closed loop whose only servers are all on a streak.
    ///
    /// With [`ResilienceConfig::disabled`] this is bit-identical to
    /// [`run_closed_loop_faulted`](Self::run_closed_loop_faulted): no
    /// extra RNG draws, no event-schedule changes. [`ResilienceStats`]
    /// counters cover the whole run (warmup included), unlike
    /// [`FaultStats`], which covers the measurement window.
    ///
    /// # Errors
    /// As [`run_closed_loop_faulted`](Self::run_closed_loop_faulted).
    #[allow(clippy::too_many_arguments)]
    pub fn run_closed_loop_resilient(
        &self,
        source: &mut dyn RequestSource,
        n_clients: u32,
        warmup: u64,
        measured: u64,
        seed: u64,
        faults: &ClusterFaults,
        retry: &RetryPolicy,
        resilience: &ResilienceConfig,
    ) -> Result<(RunStats, ResilienceStats), ConfigError> {
        resilience.validate();
        if n_clients == 0 {
            return Err(ConfigError::ZeroCount { param: "n_clients" });
        }
        if measured == 0 {
            return Err(ConfigError::ZeroCount { param: "measured" });
        }
        if faults.planned_servers() > self.servers as usize {
            return Err(ConfigError::CapacityExceeded {
                what: "fault plan servers",
                requested: faults.planned_servers() as u64,
                available: self.servers as u64,
            });
        }
        let s = self.servers as usize;
        let n_res = Resource::ALL.len();
        let mut rng = SimRng::seed_from(seed);
        let mut dispatch_rng = rng.fork(99);

        // Resilience state: absent mechanisms cost nothing — the
        // disabled path below executes exactly the statements of the
        // plain faulted run (the bit-for-bit guarantee).
        let mut budget: Option<RetryBudget> = resilience.retry_budget.map(RetryBudget::new);
        let mut breakers: Option<Vec<CircuitBreaker>> = resilience.breaker.map(|cfg| {
            (0..s)
                .map(|srv| CircuitBreaker::new(cfg, seed ^ 0xB4EA_0001, srv as u64))
                .collect()
        });
        let mut res_stats = ResilienceStats::default();
        // All-closed fast path: until the first recorded failure every
        // breaker is Closed, so `admits` is vacuously true and
        // `note_dispatch` a no-op — dispatch reads `up` directly and
        // skips the per-request eligibility scan. `elig_buf` is reused
        // across dispatches once a breaker has been touched.
        let mut breakers_touched = false;
        let mut elig_buf: Vec<bool> = vec![true; s];

        // Pre-size for the steady state: at most one service event and
        // one timeout per client in flight, plus the outage plan.
        let fault_events: usize = (0..s).map(|srv| faults.windows_for(srv).len() * 2).sum();
        let mut events: EventQueue<CEv> =
            EventQueue::with_capacity(n_clients as usize * 2 + fault_events);
        // All stage lists for the run live here; events and attempts
        // carry `Copy` handles. The arena grows with the run's logical
        // request count (a few stages each) and is dropped wholesale at
        // the end — one bump append per request instead of one `Rc`
        // allocation plus refcount churn on every retry and zombie.
        let mut arena: EpochArena<Stage> = EpochArena::with_capacity(n_clients as usize * 8);
        let mut inflight: Vec<Attempt> = Vec::new();
        let mut slot_gen: Vec<u64> = Vec::new();
        let mut active: Vec<bool> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        // queues[server][resource]
        let mut queues: Vec<Vec<VecDeque<usize>>> = vec![vec![Default::default(); n_res]; s];
        let mut busy: Vec<[u32; 4]> = vec![[0; 4]; s];
        let mut busy_ns: Vec<[u128; 4]> = vec![[0; 4]; s];
        let mut in_flight_per_server: Vec<u32> = vec![0; s];
        let mut up: Vec<bool> = vec![true; s];
        let mut parked: VecDeque<(ArenaSlice, SimTime, u32)> = VecDeque::new();
        let mut rr_next = 0usize;

        // Pre-schedule the whole outage plan; zero windows => zero events.
        // A window that cannot be scheduled (its instant precedes the
        // clock — impossible for generated plans, reachable through a
        // hand-built one) degrades the run: the window is skipped and
        // counted in `FaultStats::plan_skipped` instead of panicking the
        // whole sweep cell. Skipping both edges together keeps the
        // up/down bookkeeping balanced.
        let mut plan_skipped_n = 0u64;
        for server in 0..s {
            for w in faults.windows_for(server) {
                if events
                    .try_schedule(w.down_at, CEv::Down { server })
                    .is_err()
                {
                    plan_skipped_n += 1;
                    continue;
                }
                if events.try_schedule(w.up_at, CEv::Up { server }).is_err() {
                    // Down landed but Up cannot: bring the server back at
                    // the earliest schedulable instant rather than losing
                    // it for the rest of the run.
                    plan_skipped_n += 1;
                    events.schedule(events.now(), CEv::Up { server });
                }
            }
        }

        let servers_at = |r: Resource, spec: &ServerSpec| -> u32 {
            match r {
                Resource::Cpu => spec.cores,
                Resource::Memory => spec.memory_channels,
                Resource::Disk => spec.disks,
                Resource::Net => spec.nics,
            }
        };

        let inflation = self.inflation();
        let target = warmup + measured;
        let mut completed = 0u64;
        let mut completed_measured = 0u64;
        let mut timeouts_n = 0u64;
        let mut retries_n = 0u64;
        let mut dropped_n = 0u64;
        // Drops over the whole run (never reset): drops count toward the
        // termination target so a run where faults starve completions
        // still ends instead of generating retry work forever.
        let mut dropped_total = 0u64;
        let mut latency = Histogram::new();
        let mut measure_start = SimTime::ZERO;

        macro_rules! try_start {
            ($srv:expr, $res:expr, $now:expr) => {{
                let ri = $res.index();
                while busy[$srv][ri] < servers_at($res, &self.spec) {
                    let Some(req) = queues[$srv][ri].pop_front() else {
                        break;
                    };
                    busy[$srv][ri] += 1;
                    let svc = arena.get(inflight[req].stages)[inflight[req].next_stage].service;
                    busy_ns[$srv][ri] += svc.as_nanos() as u128;
                    events.schedule(
                        $now + svc,
                        CEv::Done {
                            slot: req,
                            gen: slot_gen[req],
                            server: $srv,
                            resource: $res,
                        },
                    );
                }
            }};
        }

        // Picks an eligible server per the dispatch policy; `None` when
        // none is eligible. With `elig == up` (no breakers) this draws
        // exactly what the plain run draws (the bit-for-bit guarantee).
        macro_rules! pick_eligible {
            ($elig:expr) => {{
                let elig: &[bool] = $elig;
                match self.dispatch {
                    Dispatch::RoundRobin => {
                        let mut chosen = None;
                        for _ in 0..s {
                            rr_next = (rr_next + 1) % s;
                            if elig[rr_next] {
                                chosen = Some(rr_next);
                                break;
                            }
                        }
                        chosen
                    }
                    Dispatch::Random => {
                        if elig.iter().all(|&u| u) {
                            Some(dispatch_rng.index(s))
                        } else {
                            let ups: Vec<usize> = (0..s).filter(|&i| elig[i]).collect();
                            if ups.is_empty() {
                                None
                            } else {
                                Some(ups[dispatch_rng.index(ups.len())])
                            }
                        }
                    }
                    Dispatch::LeastLoaded => {
                        let mut best: Option<usize> = None;
                        for i in 0..s {
                            if !elig[i] {
                                continue;
                            }
                            match best {
                                Some(b) if in_flight_per_server[i] >= in_flight_per_server[b] => {}
                                _ => best = Some(i),
                            }
                        }
                        best
                    }
                }
            }};
        }

        // Breaker-aware dispatch: skip servers whose breaker refuses;
        // when every live server refuses, route anyway rather than park
        // (breakers shed failure streaks, they do not model outages).
        macro_rules! pick_server {
            ($now:expr) => {{
                match &mut breakers {
                    None => pick_eligible!(&up),
                    Some(_) if !breakers_touched => pick_eligible!(&up),
                    Some(bs) => {
                        for i in 0..s {
                            elig_buf[i] = up[i] && bs[i].admits($now);
                        }
                        if !elig_buf.iter().any(|&e| e) && up.iter().any(|&u| u) {
                            res_stats.breaker_fast_fails += 1;
                            elig_buf.copy_from_slice(&up);
                        }
                        let picked = pick_eligible!(&elig_buf);
                        if let Some(srv) = picked {
                            bs[srv].note_dispatch();
                        }
                        picked
                    }
                }
            }};
        }

        macro_rules! complete {
            ($started:expr, $now:expr) => {{
                completed += 1;
                if completed == warmup {
                    measure_start = $now;
                    latency = Histogram::new();
                    timeouts_n = 0;
                    retries_n = 0;
                    dropped_n = 0;
                }
                if completed > warmup {
                    completed_measured += 1;
                }
                latency.record_duration($now.saturating_sub($started));
            }};
        }

        macro_rules! enqueue {
            ($stages:expr, $logical_started:expr, $attempt_no:expr, $now:expr) => {{
                let stages: ArenaSlice = $stages;
                match pick_server!($now) {
                    None => parked.push_back((stages, $logical_started, $attempt_no)),
                    Some(server) => {
                        in_flight_per_server[server] += 1;
                        let first = arena.get(stages)[0].resource;
                        let attempt = Attempt {
                            stages,
                            next_stage: 0,
                            logical_started: $logical_started,
                            server,
                            attempt_no: $attempt_no,
                            abandoned: false,
                        };
                        let slot = match free.pop() {
                            Some(x) => {
                                inflight[x] = attempt;
                                active[x] = true;
                                x
                            }
                            None => {
                                inflight.push(attempt);
                                slot_gen.push(0);
                                active.push(true);
                                inflight.len() - 1
                            }
                        };
                        if let Some(t) = retry.timeout {
                            events.schedule(
                                $now + t,
                                CEv::Timeout {
                                    slot,
                                    gen: slot_gen[slot],
                                },
                            );
                        }
                        queues[server][first.index()].push_back(slot);
                        try_start!(server, first, $now);
                    }
                }
            }};
        }

        macro_rules! launch {
            ($now:expr) => {{
                'gen: while completed + dropped_total < target {
                    let mut stages = source.next_request(&mut rng);
                    if let Some(b) = &mut budget {
                        b.on_request();
                        res_stats.offered += 1;
                        res_stats.admitted += 1;
                    }
                    if stages.is_empty() {
                        complete!($now, $now);
                        continue 'gen;
                    }
                    for st in &mut stages {
                        *st = Stage::new(st.resource, st.service * inflation);
                    }
                    enqueue!(arena.alloc_copy(&stages), $now, 0u32, $now);
                    break 'gen;
                }
            }};
        }

        // A dispatched attempt failed (crash or timeout): retry with
        // backoff while the per-request attempt budget AND the global
        // retry budget both allow it, else drop and free the client.
        macro_rules! fail_attempt {
            ($stages:expr, $logical_started:expr, $attempt_no:expr, $now:expr) => {{
                if $attempt_no < retry.max_retries
                    && match &mut budget {
                        None => true,
                        Some(b) => b.try_spend(),
                    }
                {
                    retries_n += 1;
                    let delay = retry.backoff_for($attempt_no);
                    events.schedule(
                        $now + delay,
                        CEv::Retry {
                            stages: $stages,
                            logical_started: $logical_started,
                            attempt_no: $attempt_no + 1,
                        },
                    );
                } else {
                    dropped_n += 1;
                    dropped_total += 1;
                    launch!($now);
                }
            }};
        }

        for _ in 0..n_clients {
            launch!(SimTime::ZERO);
        }

        while let Some((now, ev)) = events.pop() {
            match ev {
                CEv::Down { server } => {
                    up[server] = false;
                    // Fail-fast: everything queued or running here dies.
                    let victims: Vec<usize> = (0..inflight.len())
                        .filter(|&slot| active[slot] && inflight[slot].server == server)
                        .collect();
                    for q in queues[server].iter_mut() {
                        q.clear();
                    }
                    busy[server] = [0; 4];
                    in_flight_per_server[server] = 0;
                    for slot in victims {
                        slot_gen[slot] += 1; // voids pending Done/Timeout
                        active[slot] = false;
                        free.push(slot);
                        if let Some(bs) = &mut breakers {
                            breakers_touched = true;
                            bs[server].record_failure(now);
                        }
                        if !inflight[slot].abandoned {
                            let stages = inflight[slot].stages;
                            let ls = inflight[slot].logical_started;
                            let an = inflight[slot].attempt_no;
                            fail_attempt!(stages, ls, an, now);
                        }
                    }
                }
                CEv::Up { server } => {
                    up[server] = true;
                    // Work parked while everything was down re-enters now.
                    while let Some((stages, ls, an)) = parked.pop_front() {
                        enqueue!(stages, ls, an, now);
                    }
                }
                CEv::Timeout { slot, gen } => {
                    if slot_gen[slot] != gen || !active[slot] || inflight[slot].abandoned {
                        continue;
                    }
                    inflight[slot].abandoned = true;
                    timeouts_n += 1;
                    if let Some(bs) = &mut breakers {
                        breakers_touched = true;
                        bs[inflight[slot].server].record_failure(now);
                    }
                    // The zombie keeps draining on the server; the client
                    // moves on sharing the same stage list (a 12-byte
                    // handle copy, no allocation).
                    let stages = inflight[slot].stages;
                    let ls = inflight[slot].logical_started;
                    let an = inflight[slot].attempt_no;
                    fail_attempt!(stages, ls, an, now);
                }
                CEv::Retry {
                    stages,
                    logical_started,
                    attempt_no,
                } => {
                    enqueue!(stages, logical_started, attempt_no, now);
                }
                CEv::Done {
                    slot,
                    gen,
                    server,
                    resource,
                } => {
                    if slot_gen[slot] != gen {
                        continue; // voided by a crash
                    }
                    busy[server][resource.index()] -= 1;
                    inflight[slot].next_stage += 1;
                    if inflight[slot].next_stage >= inflight[slot].stages.len() {
                        in_flight_per_server[server] -= 1;
                        slot_gen[slot] += 1; // voids a pending Timeout
                        active[slot] = false;
                        free.push(slot);
                        if !inflight[slot].abandoned {
                            if let Some(bs) = &mut breakers {
                                bs[server].record_success(now);
                            }
                            let started = inflight[slot].logical_started;
                            complete!(started, now);
                            launch!(now);
                        }
                    } else {
                        let r =
                            arena.get(inflight[slot].stages)[inflight[slot].next_stage].resource;
                        queues[server][r.index()].push_back(slot);
                        try_start!(server, r, now);
                    }
                    try_start!(server, resource, now);
                }
            }
            // Drops count toward the target: a fault-starved run ends
            // after the drop budget instead of looping forever.
            if completed + dropped_total >= target {
                break;
            }
        }

        let end = events.now();
        let window = end.saturating_sub(measure_start);
        let span = end.saturating_sub(SimTime::ZERO).as_nanos() as f64;
        let mut utilization = [0.0; 4];
        if span > 0.0 {
            for r in Resource::ALL {
                let total: u128 = busy_ns.iter().map(|b| b[r.index()]).sum();
                let cap = span * (servers_at(r, &self.spec) as f64) * s as f64;
                utilization[r.index()] = (total as f64 / cap).min(1.0);
            }
        }
        if let Some(b) = &budget {
            res_stats.retries_spent = b.spent();
            res_stats.retries_denied = b.denied();
        }
        if let Some(bs) = &breakers {
            res_stats.breaker_trips = bs.iter().map(CircuitBreaker::trips).sum();
            res_stats.breaker_open_ns = bs.iter().map(|b| b.open_ns(end)).sum();
        }
        Ok((
            RunStats {
                completed: completed_measured,
                window,
                latency,
                utilization,
                faults: FaultStats {
                    timeouts: timeouts_n,
                    retries: retries_n,
                    dropped: dropped_n,
                    offered: completed_measured + dropped_n,
                    plan_skipped: plan_skipped_n,
                },
                queue: events.obs_stats(),
            },
            res_stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServerSim;

    fn exp_cpu(us: u64) -> impl FnMut(&mut SimRng) -> Vec<Stage> {
        move |rng: &mut SimRng| {
            vec![Stage::new(
                Resource::Cpu,
                rng.exp_duration(SimDuration::from_micros(us)),
            )]
        }
    }

    #[test]
    fn ideal_cluster_aggregates_single_server_throughput() {
        // The paper's aggregation assumption: 4 ideal servers ~= 4x one.
        let single = ServerSim::new(ServerSpec::new(2))
            .run_closed_loop(&mut exp_cpu(1000), 16, 300, 4000, 7)
            .throughput_rps();
        let cluster = Cluster::ideal(ServerSpec::new(2), 4)
            .unwrap()
            .run_closed_loop(&mut exp_cpu(1000), 64, 300, 8000, 7)
            .unwrap()
            .throughput_rps();
        let ratio = cluster / single;
        assert!((3.7..=4.3).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn scaleout_overhead_erodes_aggregation() {
        let mut lossy = Cluster::ideal(ServerSpec::new(2), 8).unwrap();
        lossy.scaleout_overhead = 0.05; // 5% per doubling
        let ideal = Cluster::ideal(ServerSpec::new(2), 8)
            .unwrap()
            .run_closed_loop(&mut exp_cpu(1000), 128, 300, 8000, 3)
            .unwrap()
            .throughput_rps();
        let eroded = lossy
            .run_closed_loop(&mut exp_cpu(1000), 128, 300, 8000, 3)
            .unwrap()
            .throughput_rps();
        let loss = 1.0 - eroded / ideal;
        // log2(8) * 5% = 15% inflation -> ~13% throughput loss.
        assert!((0.08..=0.20).contains(&loss), "loss {loss}");
    }

    #[test]
    fn least_loaded_beats_random_on_tail_latency() {
        let run = |dispatch| {
            let mut c = Cluster::ideal(ServerSpec::new(1), 8).unwrap();
            c.dispatch = dispatch;
            let stats = c
                .run_closed_loop(&mut exp_cpu(1000), 12, 500, 8000, 11)
                .unwrap();
            stats.latency.percentile(99.0).unwrap()
        };
        let ll = run(Dispatch::LeastLoaded);
        let rnd = run(Dispatch::Random);
        assert!(ll < rnd, "p99: least-loaded {ll} vs random {rnd}");
    }

    #[test]
    fn round_robin_balances_perfectly_with_uniform_work() {
        let c = Cluster {
            dispatch: Dispatch::RoundRobin,
            ..Cluster::ideal(ServerSpec::new(1), 4).unwrap()
        };
        let mut fixed =
            |_rng: &mut SimRng| vec![Stage::new(Resource::Cpu, SimDuration::from_micros(500))];
        let stats = c.run_closed_loop(&mut fixed, 4, 100, 2000, 5).unwrap();
        // 4 clients over 4 servers at 500 us: 8000 RPS, no queueing.
        assert!((stats.throughput_rps() - 8000.0).abs() < 100.0);
        let p95 = stats.latency.percentile(95.0).unwrap();
        assert!(p95 < 6e-4, "p95 {p95}");
    }

    #[test]
    fn inflation_formula() {
        let mut c = Cluster::ideal(ServerSpec::new(1), 16).unwrap();
        c.scaleout_overhead = 0.1;
        assert!((c.inflation() - 1.4).abs() < 1e-12);
        assert_eq!(
            Cluster::ideal(ServerSpec::new(1), 16).unwrap().inflation(),
            1.0
        );
    }

    #[test]
    fn rejects_empty_cluster() {
        assert!(matches!(
            Cluster::ideal(ServerSpec::new(1), 0),
            Err(ConfigError::ZeroCount { param: "servers" })
        ));
    }

    #[test]
    fn rejects_zero_clients_and_window() {
        let c = Cluster::ideal(ServerSpec::new(1), 2).unwrap();
        assert!(c.run_closed_loop(&mut exp_cpu(100), 0, 1, 1, 1).is_err());
        assert!(c.run_closed_loop(&mut exp_cpu(100), 1, 1, 0, 1).is_err());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use wcs_simcore::faults::FaultProcess;

    fn exp_cpu(us: u64) -> impl FnMut(&mut SimRng) -> Vec<Stage> {
        move |rng: &mut SimRng| {
            vec![Stage::new(
                Resource::Cpu,
                rng.exp_duration(SimDuration::from_micros(us)),
            )]
        }
    }

    fn fingerprint(stats: &RunStats) -> (u64, u64, String, String) {
        (
            stats.completed,
            stats.window.as_nanos(),
            format!("{:?}", stats.latency),
            format!("{:?}", stats.utilization),
        )
    }

    #[test]
    fn fail_free_plan_is_bit_identical_to_plain_run() {
        for dispatch in [
            Dispatch::RoundRobin,
            Dispatch::LeastLoaded,
            Dispatch::Random,
        ] {
            let mut c = Cluster::ideal(ServerSpec::new(2), 4).unwrap();
            c.dispatch = dispatch;
            let plain = c
                .run_closed_loop(&mut exp_cpu(800), 16, 200, 3000, 21)
                .unwrap();
            let faulted = c
                .run_closed_loop_faulted(
                    &mut exp_cpu(800),
                    16,
                    200,
                    3000,
                    21,
                    &ClusterFaults::fail_free(),
                    &RetryPolicy::none(),
                )
                .unwrap();
            assert_eq!(fingerprint(&plain), fingerprint(&faulted));
            assert_eq!(faulted.faults.timeouts, 0);
            assert_eq!(faulted.faults.dropped, 0);
            assert_eq!(faulted.faults.offered, faulted.completed);
        }
    }

    #[test]
    fn single_server_outage_degrades_but_does_not_stop() {
        let c = Cluster::ideal(ServerSpec::new(2), 4).unwrap();
        // Server 0 dies at 0.5 s for 1 s, in the middle of the run.
        let faults = ClusterFaults::single_outage(
            0,
            SimTime::ZERO + SimDuration::from_millis(500),
            SimDuration::from_secs(1),
        );
        let retry =
            RetryPolicy::new(SimDuration::from_millis(50), 3, SimDuration::from_millis(1)).unwrap();
        let stats = c
            .run_closed_loop_faulted(&mut exp_cpu(1000), 32, 200, 8000, 9, &faults, &retry)
            .unwrap();
        assert_eq!(stats.completed, 8000, "run still completes");
        // The crash kills in-flight work exactly once; retries recover it.
        assert!(stats.faults.retries > 0, "crash should trigger retries");
        assert!(stats.goodput_rps() > 0.0);
        assert!(stats.offered_rps() >= stats.goodput_rps());
    }

    #[test]
    fn dropped_requests_widen_offered_over_goodput() {
        let c = Cluster::ideal(ServerSpec::new(1), 2).unwrap();
        // Both servers down together for a stretch; no retry budget, so
        // crash victims are dropped.
        let mut faults = ClusterFaults::fail_free();
        for srv in 0..2 {
            faults.set_windows(
                srv,
                vec![wcs_simcore::faults::DownWindow {
                    down_at: SimTime::ZERO + SimDuration::from_millis(100),
                    up_at: SimTime::ZERO + SimDuration::from_millis(400),
                }],
            );
        }
        let stats = c
            .run_closed_loop_faulted(
                &mut exp_cpu(1000),
                8,
                100,
                4000,
                13,
                &faults,
                &RetryPolicy::none(),
            )
            .unwrap();
        assert!(stats.faults.dropped > 0, "crash victims are dropped");
        assert_eq!(stats.faults.offered, stats.completed + stats.faults.dropped);
        assert!(stats.offered_rps() > stats.goodput_rps());
    }

    #[test]
    fn timeouts_fire_on_slow_requests() {
        let c = Cluster::ideal(ServerSpec::new(1), 1).unwrap();
        // 10 eager clients on one 1-core server: queueing delay ~10 ms,
        // but the timeout is 3 ms, so waits blow the budget constantly.
        let retry = RetryPolicy::new(
            SimDuration::from_millis(3),
            1,
            SimDuration::from_micros(100),
        )
        .unwrap();
        let stats = c
            .run_closed_loop_faulted(
                &mut exp_cpu(1000),
                10,
                100,
                2000,
                5,
                &ClusterFaults::fail_free(),
                &retry,
            )
            .unwrap();
        assert!(stats.faults.timeouts > 0, "timeouts {:?}", stats.faults);
        assert!(stats.faults.retries > 0);
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let c = Cluster::ideal(ServerSpec::new(2), 4).unwrap();
        let p =
            FaultProcess::exponential(SimDuration::from_millis(300), SimDuration::from_millis(40))
                .unwrap();
        let faults = ClusterFaults::from_processes(&[p, p, p, p], SimDuration::from_secs(30), 77);
        let retry =
            RetryPolicy::new(SimDuration::from_millis(20), 2, SimDuration::from_millis(1)).unwrap();
        let run = || {
            c.run_closed_loop_faulted(&mut exp_cpu(900), 24, 200, 4000, 31, &faults, &retry)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.window, b.window);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn disabled_resilience_is_bit_identical_to_faulted_run() {
        use crate::resilience::ResilienceConfig;
        let c = Cluster::ideal(ServerSpec::new(2), 4).unwrap();
        let p =
            FaultProcess::exponential(SimDuration::from_millis(300), SimDuration::from_millis(40))
                .unwrap();
        let faults = ClusterFaults::from_processes(&[p, p, p, p], SimDuration::from_secs(30), 77);
        let retry =
            RetryPolicy::new(SimDuration::from_millis(20), 2, SimDuration::from_millis(1)).unwrap();
        for dispatch in [
            Dispatch::RoundRobin,
            Dispatch::LeastLoaded,
            Dispatch::Random,
        ] {
            let mut cl = c.clone();
            cl.dispatch = dispatch;
            let plain = cl
                .run_closed_loop_faulted(&mut exp_cpu(900), 24, 200, 4000, 31, &faults, &retry)
                .unwrap();
            let (run, res) = cl
                .run_closed_loop_resilient(
                    &mut exp_cpu(900),
                    24,
                    200,
                    4000,
                    31,
                    &faults,
                    &retry,
                    &ResilienceConfig::disabled(),
                )
                .unwrap();
            assert_eq!(fingerprint(&plain), fingerprint(&run));
            assert_eq!(plain.faults, run.faults);
            assert_eq!(res, crate::resilience::ResilienceStats::default());
        }
    }

    #[test]
    fn retry_budget_caps_amplification_under_fault_storm() {
        use crate::resilience::{ResilienceConfig, RetryBudgetConfig};
        let c = Cluster::ideal(ServerSpec::new(2), 4).unwrap();
        // Churning faults + a generous per-request retry allowance: the
        // unconditional path would amplify; the budget must hold the line.
        let p =
            FaultProcess::exponential(SimDuration::from_millis(120), SimDuration::from_millis(30))
                .unwrap();
        let faults = ClusterFaults::from_processes(&[p, p, p, p], SimDuration::from_secs(60), 5);
        let retry =
            RetryPolicy::new(SimDuration::from_millis(10), 8, SimDuration::from_millis(1)).unwrap();
        let budget = RetryBudgetConfig {
            ratio: 0.01,
            initial: 2.0,
            cap: 8.0,
        };
        let cfg = ResilienceConfig {
            retry_budget: Some(budget),
            ..ResilienceConfig::disabled()
        };
        let (stats, res) = c
            .run_closed_loop_resilient(&mut exp_cpu(900), 24, 200, 6000, 31, &faults, &retry, &cfg)
            .unwrap();
        assert!(res.offered > 0);
        let ceiling = budget.initial + budget.ratio * res.offered as f64;
        assert!(
            (res.retries_spent as f64) <= ceiling + 1e-9,
            "spent {} > ceiling {ceiling}",
            res.retries_spent
        );
        assert!(res.retries_denied > 0, "storm must exhaust the budget");
        assert!(stats.completed > 0);
        // Unbudgeted comparison run: strictly more retries granted.
        let unbudgeted = c
            .run_closed_loop_faulted(&mut exp_cpu(900), 24, 200, 6000, 31, &faults, &retry)
            .unwrap();
        assert!(
            unbudgeted.faults.retries + unbudgeted.faults.dropped > 0,
            "storm is real"
        );
    }

    #[test]
    fn breakers_trip_on_outage_and_run_recovers() {
        use crate::resilience::{BreakerConfig, ResilienceConfig};
        let c = Cluster::ideal(ServerSpec::new(2), 4).unwrap();
        let faults = ClusterFaults::single_outage(
            0,
            SimTime::ZERO + SimDuration::from_millis(200),
            SimDuration::from_millis(800),
        );
        let retry =
            RetryPolicy::new(SimDuration::from_millis(30), 3, SimDuration::from_millis(1)).unwrap();
        let cfg = ResilienceConfig {
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                open_for: SimDuration::from_millis(50),
                jitter: 0.2,
                half_open_probes: 2,
            }),
            ..ResilienceConfig::disabled()
        };
        let (stats, res) = c
            .run_closed_loop_resilient(&mut exp_cpu(1000), 32, 200, 6000, 9, &faults, &retry, &cfg)
            .unwrap();
        assert_eq!(stats.completed, 6000, "run completes despite the trip");
        assert!(res.breaker_trips > 0, "outage victims trip the breaker");
        assert!(res.breaker_open_ns > 0);
        // Determinism of the resilient path.
        let (stats2, res2) = c
            .run_closed_loop_resilient(&mut exp_cpu(1000), 32, 200, 6000, 9, &faults, &retry, &cfg)
            .unwrap();
        assert_eq!(stats.completed, stats2.completed);
        assert_eq!(stats.window, stats2.window);
        assert_eq!(res, res2);
    }

    #[test]
    fn whole_cluster_outage_parks_and_recovers() {
        let c = Cluster::ideal(ServerSpec::new(1), 1).unwrap();
        let faults = ClusterFaults::single_outage(
            0,
            SimTime::ZERO + SimDuration::from_millis(50),
            SimDuration::from_millis(200),
        );
        let retry = RetryPolicy::new(
            SimDuration::from_millis(500),
            5,
            SimDuration::from_millis(1),
        )
        .unwrap();
        // With a generous timeout and retry budget, all work eventually
        // completes after the repair.
        let stats = c
            .run_closed_loop_faulted(&mut exp_cpu(500), 4, 50, 1000, 3, &faults, &retry)
            .unwrap();
        assert_eq!(stats.completed, 1000);
        assert!(stats.faults.retries > 0);
    }
}
