//! Cluster-level simulation: many servers behind a load balancer.
//!
//! The paper's performance model "makes the simplifying assumption that
//! cluster-level performance can be approximated by the aggregation of
//! single-machine benchmarks" and flags validation of that assumption as
//! future work (Section 4). This module does the validation: it
//! simulates `n` identical servers behind a dispatcher and compares the
//! cluster's QoS-constrained throughput against `n x` the single-server
//! result, including a configurable scale-out overhead (the Amdahl-style
//! costs the paper lists: bigger data structures, more coordination,
//! higher latency variability).

use wcs_simcore::stats::Histogram;
use wcs_simcore::{EventQueue, SimRng, SimTime};
#[cfg(test)]
use wcs_simcore::SimDuration;

use crate::engine::{RunStats, ServerSpec};
use crate::request::{RequestSource, Resource, Stage};

/// Dispatch policy of the front-end load balancer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Dispatch {
    /// Round-robin across servers.
    RoundRobin,
    /// Join the server with the fewest requests in flight.
    LeastLoaded,
    /// Uniformly random server.
    Random,
}

/// A cluster of identical servers behind a dispatcher.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Per-server capacity.
    pub spec: ServerSpec,
    /// Number of servers.
    pub servers: u32,
    /// Dispatch policy.
    pub dispatch: Dispatch,
    /// Fractional per-request demand inflation per doubling of cluster
    /// size (the scale-out overhead: routing, fan-out, bigger metadata).
    pub scaleout_overhead: f64,
}

impl Cluster {
    /// A cluster with no scale-out overhead (the paper's idealized
    /// aggregation assumption).
    pub fn ideal(spec: ServerSpec, servers: u32) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        Cluster {
            spec,
            servers,
            dispatch: Dispatch::LeastLoaded,
            scaleout_overhead: 0.0,
        }
    }

    /// Demand inflation factor for this cluster size.
    pub fn inflation(&self) -> f64 {
        1.0 + self.scaleout_overhead * (self.servers as f64).log2()
    }

    /// Runs `n_clients` closed-loop clients against the cluster until
    /// `warmup + measured` completions; reports cluster-wide stats.
    ///
    /// # Panics
    /// Panics if `n_clients` or `measured` is zero.
    pub fn run_closed_loop(
        &self,
        source: &mut dyn RequestSource,
        n_clients: u32,
        warmup: u64,
        measured: u64,
        seed: u64,
    ) -> RunStats {
        assert!(n_clients > 0, "need at least one client");
        assert!(measured > 0, "need a measurement window");
        let s = self.servers as usize;
        let n_res = Resource::ALL.len();
        let mut rng = SimRng::seed_from(seed);
        let mut dispatch_rng = rng.fork(99);

        struct InFlight {
            stages: Vec<Stage>,
            next_stage: usize,
            started: SimTime,
        }
        #[derive(Clone, Copy)]
        struct Done {
            req: usize,
            server: usize,
            resource: Resource,
        }

        let mut events: EventQueue<Done> = EventQueue::new();
        let mut inflight: Vec<InFlight> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        // queues[server][resource]
        let mut queues: Vec<Vec<std::collections::VecDeque<usize>>> =
            vec![vec![Default::default(); n_res]; s];
        let mut busy: Vec<[u32; 4]> = vec![[0; 4]; s];
        let mut busy_ns: Vec<[u128; 4]> = vec![[0; 4]; s];
        let mut in_flight_per_server: Vec<u32> = vec![0; s];
        let mut rr_next = 0usize;

        let servers_at = |r: Resource, spec: &ServerSpec| -> u32 {
            match r {
                Resource::Cpu => spec.cores,
                Resource::Memory => spec.memory_channels,
                Resource::Disk => spec.disks,
                Resource::Net => spec.nics,
            }
        };

        let inflation = self.inflation();
        let target = warmup + measured;
        let mut completed = 0u64;
        let mut completed_measured = 0u64;
        let mut latency = Histogram::new();
        let mut measure_start = SimTime::ZERO;

        macro_rules! try_start {
            ($srv:expr, $res:expr, $now:expr) => {{
                let ri = $res.index();
                while busy[$srv][ri] < servers_at($res, &self.spec) {
                    let Some(req) = queues[$srv][ri].pop_front() else { break };
                    busy[$srv][ri] += 1;
                    let svc = inflight[req].stages[inflight[req].next_stage].service;
                    busy_ns[$srv][ri] += svc.as_nanos() as u128;
                    events.schedule(
                        $now + svc,
                        Done {
                            req,
                            server: $srv,
                            resource: $res,
                        },
                    );
                }
            }};
        }

        macro_rules! launch {
            ($now:expr) => {{
                'gen: while completed < target {
                    let mut stages = source.next_request(&mut rng);
                    if stages.is_empty() {
                        completed += 1;
                        if completed == warmup {
                            measure_start = $now;
                            latency = Histogram::new();
                        }
                        if completed > warmup {
                            completed_measured += 1;
                        }
                        latency.record(0.0);
                        continue 'gen;
                    }
                    for st in &mut stages {
                        *st = Stage::new(st.resource, st.service * inflation);
                    }
                    let server = match self.dispatch {
                        Dispatch::RoundRobin => {
                            rr_next = (rr_next + 1) % s;
                            rr_next
                        }
                        Dispatch::Random => dispatch_rng.index(s),
                        Dispatch::LeastLoaded => {
                            let mut best = 0;
                            for i in 1..s {
                                if in_flight_per_server[i] < in_flight_per_server[best] {
                                    best = i;
                                }
                            }
                            best
                        }
                    };
                    in_flight_per_server[server] += 1;
                    let slot = match free.pop() {
                        Some(x) => {
                            inflight[x] = InFlight {
                                stages,
                                next_stage: 0,
                                started: $now,
                            };
                            x
                        }
                        None => {
                            inflight.push(InFlight {
                                stages,
                                next_stage: 0,
                                started: $now,
                            });
                            inflight.len() - 1
                        }
                    };
                    let r = inflight[slot].stages[0].resource;
                    queues[server][r.index()].push_back(slot);
                    try_start!(server, r, $now);
                    break 'gen;
                }
            }};
        }

        for _ in 0..n_clients {
            launch!(SimTime::ZERO);
        }

        while let Some((now, ev)) = events.pop() {
            busy[ev.server][ev.resource.index()] -= 1;
            inflight[ev.req].next_stage += 1;
            if inflight[ev.req].next_stage >= inflight[ev.req].stages.len() {
                completed += 1;
                if completed == warmup {
                    measure_start = now;
                    latency = Histogram::new();
                }
                if completed > warmup {
                    completed_measured += 1;
                }
                latency.record_duration(now.saturating_sub(inflight[ev.req].started));
                in_flight_per_server[ev.server] -= 1;
                free.push(ev.req);
                launch!(now);
            } else {
                let r = inflight[ev.req].stages[inflight[ev.req].next_stage].resource;
                queues[ev.server][r.index()].push_back(ev.req);
                try_start!(ev.server, r, now);
            }
            try_start!(ev.server, ev.resource, now);
            if completed >= target {
                break;
            }
        }

        let end = events.now();
        let window = end.saturating_sub(measure_start);
        let span = end.saturating_sub(SimTime::ZERO).as_nanos() as f64;
        let mut utilization = [0.0; 4];
        if span > 0.0 {
            for r in Resource::ALL {
                let total: u128 = busy_ns.iter().map(|b| b[r.index()]).sum();
                let cap = span * (servers_at(r, &self.spec) as f64) * s as f64;
                utilization[r.index()] = (total as f64 / cap).min(1.0);
            }
        }
        RunStats {
            completed: completed_measured,
            window,
            latency,
            utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServerSim;

    fn exp_cpu(us: u64) -> impl FnMut(&mut SimRng) -> Vec<Stage> {
        move |rng: &mut SimRng| {
            vec![Stage::new(
                Resource::Cpu,
                rng.exp_duration(SimDuration::from_micros(us)),
            )]
        }
    }

    #[test]
    fn ideal_cluster_aggregates_single_server_throughput() {
        // The paper's aggregation assumption: 4 ideal servers ~= 4x one.
        let single = ServerSim::new(ServerSpec::new(2))
            .run_closed_loop(&mut exp_cpu(1000), 16, 300, 4000, 7)
            .throughput_rps();
        let cluster = Cluster::ideal(ServerSpec::new(2), 4)
            .run_closed_loop(&mut exp_cpu(1000), 64, 300, 8000, 7)
            .throughput_rps();
        let ratio = cluster / single;
        assert!((3.7..=4.3).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn scaleout_overhead_erodes_aggregation() {
        let mut lossy = Cluster::ideal(ServerSpec::new(2), 8);
        lossy.scaleout_overhead = 0.05; // 5% per doubling
        let ideal = Cluster::ideal(ServerSpec::new(2), 8)
            .run_closed_loop(&mut exp_cpu(1000), 128, 300, 8000, 3)
            .throughput_rps();
        let eroded = lossy
            .run_closed_loop(&mut exp_cpu(1000), 128, 300, 8000, 3)
            .throughput_rps();
        let loss = 1.0 - eroded / ideal;
        // log2(8) * 5% = 15% inflation -> ~13% throughput loss.
        assert!((0.08..=0.20).contains(&loss), "loss {loss}");
    }

    #[test]
    fn least_loaded_beats_random_on_tail_latency() {
        let run = |dispatch| {
            let mut c = Cluster::ideal(ServerSpec::new(1), 8);
            c.dispatch = dispatch;
            let stats = c.run_closed_loop(&mut exp_cpu(1000), 12, 500, 8000, 11);
            stats.latency.percentile(99.0).unwrap()
        };
        let ll = run(Dispatch::LeastLoaded);
        let rnd = run(Dispatch::Random);
        assert!(ll < rnd, "p99: least-loaded {ll} vs random {rnd}");
    }

    #[test]
    fn round_robin_balances_perfectly_with_uniform_work() {
        let c = Cluster {
            dispatch: Dispatch::RoundRobin,
            ..Cluster::ideal(ServerSpec::new(1), 4)
        };
        let mut fixed = |_rng: &mut SimRng| {
            vec![Stage::new(Resource::Cpu, SimDuration::from_micros(500))]
        };
        let stats = c.run_closed_loop(&mut fixed, 4, 100, 2000, 5);
        // 4 clients over 4 servers at 500 us: 8000 RPS, no queueing.
        assert!((stats.throughput_rps() - 8000.0).abs() < 100.0);
        let p95 = stats.latency.percentile(95.0).unwrap();
        assert!(p95 < 6e-4, "p95 {p95}");
    }

    #[test]
    fn inflation_formula() {
        let mut c = Cluster::ideal(ServerSpec::new(1), 16);
        c.scaleout_overhead = 0.1;
        assert!((c.inflation() - 1.4).abs() < 1e-12);
        assert_eq!(Cluster::ideal(ServerSpec::new(1), 16).inflation(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rejects_empty_cluster() {
        Cluster::ideal(ServerSpec::new(1), 0);
    }
}
