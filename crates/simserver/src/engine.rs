//! The discrete-event server engine.

use std::collections::VecDeque;

use wcs_simcore::event::QueueObs;
use wcs_simcore::obs::Registry;
use wcs_simcore::stats::Histogram;
use wcs_simcore::{EventQueue, SimDuration, SimRng, SimTime};

use crate::failover::FaultStats;
use crate::request::{RequestSource, Resource, Stage};

/// Capacity description of the simulated server: how many parallel servers
/// each station has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServerSpec {
    /// CPU cores (parallel servers at the CPU station).
    pub cores: u32,
    /// Parallel servers at the memory station (1 for a shared admission
    /// path).
    pub memory_channels: u32,
    /// Parallel disk spindles.
    pub disks: u32,
    /// Parallel NICs.
    pub nics: u32,
}

impl ServerSpec {
    /// A server with `cores` cores and single-channel memory, disk, and
    /// NIC stations.
    ///
    /// # Panics
    /// Panics if `cores` is zero.
    pub fn new(cores: u32) -> Self {
        assert!(cores > 0, "server needs at least one core");
        ServerSpec {
            cores,
            memory_channels: 1,
            disks: 1,
            nics: 1,
        }
    }

    fn servers_at(&self, r: Resource) -> u32 {
        match r {
            Resource::Cpu => self.cores,
            Resource::Memory => self.memory_channels,
            Resource::Disk => self.disks,
            Resource::Net => self.nics,
        }
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Number of requests completed inside the measurement window.
    pub completed: u64,
    /// Length of the measurement window.
    pub window: SimDuration,
    /// End-to-end latency histogram (seconds) over requests completing
    /// after warmup.
    pub latency: Histogram,
    /// Per-resource busy fraction during the whole run, indexed by
    /// [`Resource::index`]. For multi-server stations this is normalized
    /// by the server count (1.0 = all servers busy all the time).
    pub utilization: [f64; 4],
    /// Fault-side accounting (timeouts, retries, drops, offered count).
    /// All-zero for fault-free single-server runs.
    pub faults: FaultStats,
    /// Event-queue occupancy counters for the run — scheduling volume,
    /// same-instant fast-path hits, and the pending-event high-water
    /// mark. A pure function of the simulated event stream.
    pub queue: QueueObs,
}

impl RunStats {
    /// Records this run's deterministic series — event-queue occupancy
    /// (`queue.*`) and fault accounting (`faults.*`) — into `registry`.
    pub fn export_obs(&self, registry: &Registry) {
        self.queue.export(registry);
        registry
            .counter("faults.timeouts")
            .add(self.faults.timeouts);
        registry.counter("faults.retries").add(self.faults.retries);
        registry.counter("faults.dropped").add(self.faults.dropped);
        registry.counter("faults.offered").add(self.faults.offered);
        registry
            .counter("recovery.plan_skipped")
            .add(self.faults.plan_skipped);
    }

    /// Sustained throughput over the measurement window, requests/second.
    pub fn throughput_rps(&self) -> f64 {
        if self.window.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.window.as_secs_f64()
        }
    }

    /// Goodput: successfully completed requests per second. The same as
    /// [`throughput_rps`](Self::throughput_rps); the alias exists so
    /// fault-aware reports read naturally against
    /// [`offered_rps`](Self::offered_rps).
    pub fn goodput_rps(&self) -> f64 {
        self.throughput_rps()
    }

    /// Offered throughput: requests *resolved* per second, counting both
    /// completions and drops. Falls back to goodput when the run did not
    /// track offered load (plain single-server runs).
    pub fn offered_rps(&self) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        let offered = self.faults.offered.max(self.completed);
        offered as f64 / self.window.as_secs_f64()
    }

    /// The busiest resource and its utilization.
    pub fn bottleneck(&self) -> (Resource, f64) {
        let mut best = (Resource::Cpu, self.utilization[0]);
        for r in Resource::ALL {
            if self.utilization[r.index()] > best.1 {
                best = (r, self.utilization[r.index()]);
            }
        }
        best
    }
}

struct InFlight {
    stages: Vec<Stage>,
    next_stage: usize,
    started: SimTime,
}

#[derive(Clone, Copy)]
enum Ev {
    /// A stage finished at the given station for the given request.
    StageDone { req: usize, resource: Resource },
    /// A client's think time expired; it issues its next request.
    Launch,
}

struct StageDoneInfo {
    req: usize,
    resource: Resource,
}

/// All mutable state of one run, so helper methods can borrow it cleanly.
struct Run<'a> {
    spec: ServerSpec,
    source: &'a mut dyn RequestSource,
    rng: SimRng,
    events: EventQueue<Ev>,
    inflight: Vec<InFlight>,
    free_slots: Vec<usize>,
    queues: [VecDeque<usize>; 4],
    busy: [u32; 4],
    busy_time_ns: [u128; 4],
    completed_total: u64,
    completed_measured: u64,
    latency: Histogram,
    measure_start: SimTime,
    warmup: u64,
    target_total: u64,
    think_mean: Option<SimDuration>,
}

impl Run<'_> {
    /// Starts queued work at `res` while servers are free.
    fn try_start(&mut self, res: Resource, now: SimTime) {
        let ri = res.index();
        while self.busy[ri] < self.spec.servers_at(res) {
            let Some(req) = self.queues[ri].pop_front() else {
                break;
            };
            self.busy[ri] += 1;
            let inf = &self.inflight[req];
            let service = inf.stages[inf.next_stage].service;
            self.busy_time_ns[ri] += service.as_nanos() as u128;
            self.events
                .schedule(now + service, Ev::StageDone { req, resource: res });
        }
    }

    /// Records one completion and handles measurement-window edges.
    fn account_completion(&mut self, started: SimTime, now: SimTime) {
        self.completed_total += 1;
        if self.completed_total == self.warmup {
            self.measure_start = now;
            self.latency = Histogram::new();
        }
        if self.completed_total > self.warmup {
            self.completed_measured += 1;
        }
        self.latency.record_duration(now.saturating_sub(started));
    }

    /// Issues requests from one client until one actually occupies a
    /// station (zero-demand requests complete instantly and are counted).
    fn launch(&mut self, now: SimTime) {
        while self.completed_total < self.target_total {
            let stages = self.source.next_request(&mut self.rng);
            if stages.is_empty() {
                self.account_completion(now, now);
                continue;
            }
            let slot = match self.free_slots.pop() {
                Some(s) => {
                    self.inflight[s] = InFlight {
                        stages,
                        next_stage: 0,
                        started: now,
                    };
                    s
                }
                None => {
                    self.inflight.push(InFlight {
                        stages,
                        next_stage: 0,
                        started: now,
                    });
                    self.inflight.len() - 1
                }
            };
            let r = self.inflight[slot].stages[0].resource;
            self.queues[r.index()].push_back(slot);
            self.try_start(r, now);
            return;
        }
    }
}

/// The closed-loop discrete-event server simulator.
///
/// See the crate docs for the model. A `ServerSim` is cheap to construct;
/// each [`run_closed_loop`](ServerSim::run_closed_loop) call is an
/// independent, deterministic run for the seed it is given.
#[derive(Debug, Clone)]
pub struct ServerSim {
    spec: ServerSpec,
}

impl ServerSim {
    /// Creates a simulator for the given server capacity.
    pub fn new(spec: ServerSpec) -> Self {
        ServerSim { spec }
    }

    /// Runs `n_clients` closed-loop clients (zero think time) until
    /// `warmup + measured` requests have completed, then reports
    /// statistics over the measured portion.
    ///
    /// Deterministic for a given `(source, seed)` pair.
    ///
    /// # Panics
    /// Panics if `n_clients` or `measured` is zero.
    pub fn run_closed_loop(
        &self,
        source: &mut dyn RequestSource,
        n_clients: u32,
        warmup: u64,
        measured: u64,
        seed: u64,
    ) -> RunStats {
        self.run_closed_loop_think(source, n_clients, None, warmup, measured, seed)
    }

    /// Like [`run_closed_loop`](Self::run_closed_loop), but each client
    /// waits an exponentially distributed think time (mean `think_mean`)
    /// between receiving a response and issuing its next request — the
    /// "user-defined think time" of the paper's client driver.
    ///
    /// # Panics
    /// Panics if `n_clients` or `measured` is zero.
    pub fn run_closed_loop_think(
        &self,
        source: &mut dyn RequestSource,
        n_clients: u32,
        think_mean: Option<SimDuration>,
        warmup: u64,
        measured: u64,
        seed: u64,
    ) -> RunStats {
        assert!(n_clients > 0, "need at least one client");
        assert!(measured > 0, "need a measurement window");
        let mut run = Run {
            spec: self.spec,
            source,
            rng: SimRng::seed_from(seed),
            // One pending service event per client at most, plus think
            // timers: pre-size so the run never reallocates the arena.
            events: EventQueue::with_capacity(n_clients as usize + 1),
            inflight: Vec::new(),
            free_slots: Vec::new(),
            queues: Default::default(),
            busy: [0; 4],
            busy_time_ns: [0; 4],
            completed_total: 0,
            completed_measured: 0,
            latency: Histogram::new(),
            measure_start: SimTime::ZERO,
            warmup,
            target_total: warmup + measured,
            think_mean,
        };

        for _ in 0..n_clients {
            run.launch(SimTime::ZERO);
        }

        // Batched epoch delivery: every event of an instant arrives as
        // one slice (`pop_epoch`), replacing a lane comparison per event
        // with one per epoch. Events are still processed in exact pop
        // order — the drained slice *is* the pop order, and anything
        // scheduled while processing carries a higher seq, so it lands
        // in a later epoch exactly as the one-at-a-time loop delivered
        // it. Breaking mid-epoch matches the old early exit: the clock
        // already sits at the epoch instant and the leftover events were
        // equally unprocessed before.
        let mut epoch: Vec<Ev> = Vec::new();
        'outer: while let Some(now) = run.events.pop_epoch(&mut epoch) {
            for ev in epoch.drain(..) {
                let Ev::StageDone { req, resource } = ev else {
                    run.launch(now);
                    continue;
                };
                let ev = StageDoneInfo { req, resource };
                run.busy[ev.resource.index()] -= 1;
                run.inflight[ev.req].next_stage += 1;
                let inf = &run.inflight[ev.req];
                if inf.next_stage >= inf.stages.len() {
                    let started = inf.started;
                    run.account_completion(started, now);
                    run.free_slots.push(ev.req);
                    match run.think_mean {
                        Some(mean) if !mean.is_zero() => {
                            let think = run.rng.exp_duration(mean);
                            run.events.schedule(now + think, Ev::Launch);
                        }
                        _ => run.launch(now),
                    }
                } else {
                    let r = inf.stages[inf.next_stage].resource;
                    run.queues[r.index()].push_back(ev.req);
                    run.try_start(r, now);
                }
                run.try_start(ev.resource, now);
                if run.completed_total >= run.target_total {
                    break 'outer;
                }
            }
        }

        let end = run.events.now();
        let window = end.saturating_sub(run.measure_start);
        let total_span = end.saturating_sub(SimTime::ZERO);
        let mut utilization = [0.0; 4];
        for r in Resource::ALL {
            let servers = self.spec.servers_at(r) as f64;
            let denom = total_span.as_nanos() as f64 * servers;
            if denom > 0.0 {
                // Busy time is accrued at schedule time, so services still
                // in flight when the run stops can push the raw ratio just
                // past 1; clamp, since utilization above 1 is meaningless.
                utilization[r.index()] = (run.busy_time_ns[r.index()] as f64 / denom).min(1.0);
            }
        }
        RunStats {
            completed: run.completed_measured,
            window,
            latency: run.latency,
            utilization,
            faults: FaultStats::default(),
            queue: run.events.obs_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_only(us: u64) -> impl FnMut(&mut SimRng) -> Vec<Stage> {
        move |_rng| vec![Stage::new(Resource::Cpu, SimDuration::from_micros(us))]
    }

    #[test]
    fn single_client_single_core_throughput() {
        // 1 ms per request, one client: exactly 1000 RPS.
        let sim = ServerSim::new(ServerSpec::new(1));
        let stats = sim.run_closed_loop(&mut cpu_only(1000), 1, 100, 2000, 1);
        let rps = stats.throughput_rps();
        assert!((rps - 1000.0).abs() < 1.0, "rps {rps}");
    }

    #[test]
    fn two_cores_double_throughput() {
        let sim1 = ServerSim::new(ServerSpec::new(1));
        let sim2 = ServerSim::new(ServerSpec::new(2));
        let r1 = sim1
            .run_closed_loop(&mut cpu_only(1000), 4, 100, 2000, 1)
            .throughput_rps();
        let r2 = sim2
            .run_closed_loop(&mut cpu_only(1000), 4, 100, 2000, 1)
            .throughput_rps();
        assert!((r2 / r1 - 2.0).abs() < 0.05, "speedup {}", r2 / r1);
    }

    #[test]
    fn latency_grows_with_clients_on_saturated_core() {
        let sim = ServerSim::new(ServerSpec::new(1));
        let one = sim.run_closed_loop(&mut cpu_only(1000), 1, 100, 1000, 3);
        let eight = sim.run_closed_loop(&mut cpu_only(1000), 8, 100, 1000, 3);
        let p95_1 = one.latency.percentile(95.0).unwrap();
        let p95_8 = eight.latency.percentile(95.0).unwrap();
        assert!(p95_8 > 6.0 * p95_1, "p95 {p95_1} vs {p95_8}");
        // Throughput cannot exceed capacity.
        assert!(eight.throughput_rps() < 1010.0);
    }

    #[test]
    fn serial_pipeline_throughput_is_min_capacity() {
        // CPU 1 ms + disk 2 ms: with plenty of clients the disk (500/s)
        // limits throughput.
        let mut src = |_rng: &mut SimRng| {
            vec![
                Stage::new(Resource::Cpu, SimDuration::from_micros(1000)),
                Stage::new(Resource::Disk, SimDuration::from_micros(2000)),
            ]
        };
        let sim = ServerSim::new(ServerSpec::new(4));
        let stats = sim.run_closed_loop(&mut src, 16, 200, 3000, 5);
        let rps = stats.throughput_rps();
        assert!((rps - 500.0).abs() < 10.0, "rps {rps}");
        let (bottleneck, util) = stats.bottleneck();
        assert_eq!(bottleneck, Resource::Disk);
        assert!(util > 0.9);
    }

    #[test]
    fn single_client_latency_is_sum_of_services() {
        let mut src = |_rng: &mut SimRng| {
            vec![
                Stage::new(Resource::Cpu, SimDuration::from_micros(300)),
                Stage::new(Resource::Net, SimDuration::from_micros(700)),
            ]
        };
        let sim = ServerSim::new(ServerSpec::new(1));
        let stats = sim.run_closed_loop(&mut src, 1, 10, 500, 9);
        let p95 = stats.latency.percentile(95.0).unwrap();
        assert!((p95 - 1e-3).abs() < 5e-5, "p95 {p95}");
        assert!((stats.throughput_rps() - 1000.0).abs() < 5.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let sim = ServerSim::new(ServerSpec::new(2));
        let mut jitter = |rng: &mut SimRng| {
            vec![Stage::new(
                Resource::Cpu,
                rng.exp_duration(SimDuration::from_micros(800)),
            )]
        };
        let a = sim.run_closed_loop(&mut jitter, 3, 50, 500, 42);
        let mut jitter2 = |rng: &mut SimRng| {
            vec![Stage::new(
                Resource::Cpu,
                rng.exp_duration(SimDuration::from_micros(800)),
            )]
        };
        let b = sim.run_closed_loop(&mut jitter2, 3, 50, 500, 42);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.window, b.window);
    }

    #[test]
    fn empty_requests_complete() {
        let mut src = |_rng: &mut SimRng| Vec::new();
        let sim = ServerSim::new(ServerSpec::new(1));
        let stats = sim.run_closed_loop(&mut src, 2, 10, 100, 1);
        assert_eq!(stats.completed, 100);
    }

    #[test]
    fn utilization_bounded_by_one() {
        let sim = ServerSim::new(ServerSpec::new(2));
        let stats = sim.run_closed_loop(&mut cpu_only(500), 8, 100, 2000, 11);
        for u in stats.utilization {
            assert!((0.0..=1.0001).contains(&u), "util {u}");
        }
        assert!(stats.utilization[Resource::Cpu.index()] > 0.95);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn rejects_zero_clients() {
        let sim = ServerSim::new(ServerSpec::new(1));
        sim.run_closed_loop(&mut cpu_only(1), 0, 1, 1, 1);
    }
}

#[cfg(test)]
mod think_tests {
    use super::*;

    fn cpu_only(us: u64) -> impl FnMut(&mut SimRng) -> Vec<Stage> {
        move |_rng| vec![Stage::new(Resource::Cpu, SimDuration::from_micros(us))]
    }

    #[test]
    fn think_time_reduces_offered_load() {
        // One client, 1 ms service, 9 ms mean think: ~100 RPS instead of
        // 1000.
        let sim = ServerSim::new(ServerSpec::new(1));
        let stats = sim.run_closed_loop_think(
            &mut cpu_only(1000),
            1,
            Some(SimDuration::from_millis(9)),
            200,
            3000,
            3,
        );
        let rps = stats.throughput_rps();
        assert!((rps - 100.0).abs() < 8.0, "rps {rps}");
        // Latency stays at the service time: no queueing.
        let p50 = stats.latency.percentile(50.0).unwrap();
        assert!((p50 - 1e-3).abs() < 1e-4, "p50 {p50}");
    }

    #[test]
    fn zero_think_matches_plain_closed_loop() {
        let sim = ServerSim::new(ServerSpec::new(2));
        let a = sim.run_closed_loop(&mut cpu_only(500), 4, 100, 1000, 9);
        let b =
            sim.run_closed_loop_think(&mut cpu_only(500), 4, Some(SimDuration::ZERO), 100, 1000, 9);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.window, b.window);
    }

    #[test]
    fn many_thinking_clients_saturate_like_few_eager_ones() {
        let sim = ServerSim::new(ServerSpec::new(1));
        // 50 clients with 4 ms think against a 1 ms server: offered load
        // 50/(5ms) = 10k RPS >> 1k capacity; throughput pins at capacity.
        let stats = sim.run_closed_loop_think(
            &mut cpu_only(1000),
            50,
            Some(SimDuration::from_millis(4)),
            200,
            3000,
            5,
        );
        let rps = stats.throughput_rps();
        assert!((rps - 1000.0).abs() < 30.0, "rps {rps}");
    }
}
