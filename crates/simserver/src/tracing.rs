//! Per-request tracing: capture a run's request timeline for inspection.
//!
//! The aggregate [`RunStats`](crate::RunStats) answer "how fast"; traces
//! answer "why": where each request spent its time, station by station.
//! Tracing re-runs the engine logic with instrumented stages, so it is
//! opt-in and meant for small diagnostic runs.

use std::collections::VecDeque;

use wcs_simcore::{EventQueue, SimDuration, SimRng, SimTime};

use crate::engine::ServerSpec;
use crate::request::{RequestSource, Resource, Stage};

/// One stage visit in a request's life.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StageVisit {
    /// The station.
    pub resource: Resource,
    /// Time spent queued before service began.
    pub queued: SimDuration,
    /// Service time.
    pub service: SimDuration,
}

/// One traced request.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestTrace {
    /// Arrival time.
    pub arrived: SimTime,
    /// Completion time.
    pub completed: SimTime,
    /// The visits, in order.
    pub visits: Vec<StageVisit>,
}

impl RequestTrace {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.completed.saturating_sub(self.arrived)
    }

    /// Total time spent waiting in queues.
    pub fn total_queued(&self) -> SimDuration {
        self.visits
            .iter()
            .fold(SimDuration::ZERO, |acc, v| acc + v.queued)
    }

    /// Total service time.
    pub fn total_service(&self) -> SimDuration {
        self.visits
            .iter()
            .fold(SimDuration::ZERO, |acc, v| acc + v.service)
    }

    /// The station where the request queued longest, if it queued at all.
    pub fn worst_queue(&self) -> Option<Resource> {
        self.visits
            .iter()
            .filter(|v| !v.queued.is_zero())
            .max_by_key(|v| v.queued)
            .map(|v| v.resource)
    }
}

/// Runs a closed loop like
/// [`ServerSim::run_closed_loop`](crate::ServerSim::run_closed_loop) but
/// returns the full per-request timeline of the first `traced` completed
/// requests.
///
/// # Panics
/// Panics if `n_clients` or `traced` is zero.
pub fn trace_closed_loop(
    spec: ServerSpec,
    source: &mut dyn RequestSource,
    n_clients: u32,
    traced: u64,
    seed: u64,
) -> Vec<RequestTrace> {
    assert!(n_clients > 0, "need at least one client");
    assert!(traced > 0, "need requests to trace");

    struct InFlight {
        stages: Vec<Stage>,
        next_stage: usize,
        arrived: SimTime,
        enqueued_at: SimTime,
        visits: Vec<StageVisit>,
    }
    #[derive(Clone, Copy)]
    struct Done {
        req: usize,
        resource: Resource,
    }

    let servers_at = |r: Resource| -> u32 {
        match r {
            Resource::Cpu => spec.cores,
            Resource::Memory => spec.memory_channels,
            Resource::Disk => spec.disks,
            Resource::Net => spec.nics,
        }
    };

    let mut rng = SimRng::seed_from(seed);
    let mut events: EventQueue<Done> = EventQueue::new();
    let mut inflight: Vec<InFlight> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut queues: [VecDeque<usize>; 4] = Default::default();
    let mut busy = [0u32; 4];
    let mut traces: Vec<RequestTrace> = Vec::with_capacity(traced as usize);

    macro_rules! try_start {
        ($res:expr, $now:expr) => {{
            let ri = $res.index();
            while busy[ri] < servers_at($res) {
                let Some(req) = queues[ri].pop_front() else {
                    break;
                };
                busy[ri] += 1;
                let inf = &mut inflight[req];
                let service = inf.stages[inf.next_stage].service;
                let queued = $now.saturating_sub(inf.enqueued_at);
                inf.visits.push(StageVisit {
                    resource: $res,
                    queued,
                    service,
                });
                events.schedule(
                    $now + service,
                    Done {
                        req,
                        resource: $res,
                    },
                );
            }
        }};
    }

    macro_rules! launch {
        ($now:expr) => {{
            loop {
                let stages = source.next_request(&mut rng);
                if stages.is_empty() {
                    if (traces.len() as u64) < traced {
                        traces.push(RequestTrace {
                            arrived: $now,
                            completed: $now,
                            visits: Vec::new(),
                        });
                        continue;
                    }
                    break;
                }
                let slot = match free.pop() {
                    Some(s) => s,
                    None => {
                        inflight.push(InFlight {
                            stages: Vec::new(),
                            next_stage: 0,
                            arrived: SimTime::ZERO,
                            enqueued_at: SimTime::ZERO,
                            visits: Vec::new(),
                        });
                        inflight.len() - 1
                    }
                };
                inflight[slot] = InFlight {
                    stages,
                    next_stage: 0,
                    arrived: $now,
                    enqueued_at: $now,
                    visits: Vec::new(),
                };
                let r = inflight[slot].stages[0].resource;
                queues[r.index()].push_back(slot);
                try_start!(r, $now);
                break;
            }
        }};
    }

    for _ in 0..n_clients {
        launch!(SimTime::ZERO);
    }

    while (traces.len() as u64) < traced {
        let Some((now, ev)) = events.pop() else { break };
        busy[ev.resource.index()] -= 1;
        inflight[ev.req].next_stage += 1;
        if inflight[ev.req].next_stage >= inflight[ev.req].stages.len() {
            let inf = &mut inflight[ev.req];
            traces.push(RequestTrace {
                arrived: inf.arrived,
                completed: now,
                visits: std::mem::take(&mut inf.visits),
            });
            free.push(ev.req);
            launch!(now);
        } else {
            let inf = &mut inflight[ev.req];
            inf.enqueued_at = now;
            let r = inf.stages[inf.next_stage].resource;
            queues[r.index()].push_back(ev.req);
            try_start!(r, now);
        }
        try_start!(ev.resource, now);
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(us_cpu: u64, us_disk: u64) -> impl FnMut(&mut SimRng) -> Vec<Stage> {
        move |_rng| {
            vec![
                Stage::new(Resource::Cpu, SimDuration::from_micros(us_cpu)),
                Stage::new(Resource::Disk, SimDuration::from_micros(us_disk)),
            ]
        }
    }

    #[test]
    fn uncongested_requests_never_queue() {
        let traces = trace_closed_loop(ServerSpec::new(2), &mut fixed(100, 200), 1, 50, 1);
        assert_eq!(traces.len(), 50);
        for t in &traces {
            assert_eq!(t.total_queued(), SimDuration::ZERO);
            assert_eq!(t.latency(), SimDuration::from_micros(300));
            assert_eq!(t.visits.len(), 2);
            assert!(t.worst_queue().is_none());
        }
    }

    #[test]
    fn congestion_shows_up_at_the_bottleneck() {
        // 8 clients on one core: CPU queues dominate.
        let traces = trace_closed_loop(ServerSpec::new(1), &mut fixed(500, 50), 8, 200, 3);
        let queued: Vec<_> = traces
            .iter()
            .filter(|t| !t.total_queued().is_zero())
            .collect();
        assert!(queued.len() > 150, "most requests queue ({})", queued.len());
        let cpu_worst = queued
            .iter()
            .filter(|t| t.worst_queue() == Some(Resource::Cpu))
            .count();
        assert!(cpu_worst * 10 > queued.len() * 9, "CPU is the bottleneck");
    }

    #[test]
    fn latency_decomposes_into_queue_plus_service() {
        let traces = trace_closed_loop(ServerSpec::new(1), &mut fixed(300, 100), 4, 100, 7);
        for t in &traces {
            let sum = t.total_queued() + t.total_service();
            assert_eq!(sum, t.latency(), "decomposition must be exact");
        }
    }

    #[test]
    fn visit_order_matches_stage_order() {
        let traces = trace_closed_loop(ServerSpec::new(2), &mut fixed(10, 20), 2, 20, 9);
        for t in &traces {
            assert_eq!(t.visits[0].resource, Resource::Cpu);
            assert_eq!(t.visits[1].resource, Resource::Disk);
        }
    }

    #[test]
    #[should_panic(expected = "requests to trace")]
    fn rejects_zero_traced() {
        trace_closed_loop(ServerSpec::new(1), &mut fixed(1, 1), 1, 0, 1);
    }
}
