//! Failure-aware cluster configuration: outage plans, retry policy, and
//! the fault-side counters reported alongside [`RunStats`].
//!
//! Section 4 of the paper flags "reliability concerns of ensemble-level
//! sharing" as an open question for the proposed architectures. These
//! types let the cluster simulator answer it: a [`ClusterFaults`] plan
//! maps each server to a deterministic schedule of outages (from
//! [`wcs_simcore::faults`]), and a [`RetryPolicy`] describes how the
//! front-end reacts — per-request timeouts and bounded, backed-off
//! retries. With a fail-free plan and a no-op policy, the fault-aware
//! run is bit-identical to the plain one (pay for what you use).
//!
//! [`RunStats`]: crate::RunStats

use wcs_simcore::faults::{
    downtime, ComponentId, DownWindow, FaultInjector, FaultProcess, FaultTrace,
};
use wcs_simcore::{ConfigError, SimDuration, SimTime};

/// How the dispatcher reacts when a request stalls or its server dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-attempt timeout measured from dispatch; `None` disables
    /// timeouts entirely (attempts only fail when their server dies).
    pub timeout: Option<SimDuration>,
    /// Maximum number of retries per logical request; the request is
    /// dropped once an attempt beyond this budget fails.
    pub max_retries: u32,
    /// Base backoff before a retry; attempt `k` (1-based) waits
    /// `backoff * 2^(k-1)` after its predecessor fails.
    pub backoff: SimDuration,
}

impl RetryPolicy {
    /// The no-op policy: no timeouts, no retries. A failed attempt is
    /// dropped immediately.
    pub fn none() -> Self {
        RetryPolicy {
            timeout: None,
            max_retries: 0,
            backoff: SimDuration::ZERO,
        }
    }

    /// A policy with a per-attempt `timeout`, up to `max_retries`
    /// retries, and exponential backoff starting at `backoff`.
    ///
    /// # Errors
    /// Rejects a zero timeout (every attempt would expire at dispatch).
    pub fn new(
        timeout: SimDuration,
        max_retries: u32,
        backoff: SimDuration,
    ) -> Result<Self, ConfigError> {
        if timeout.is_zero() {
            return Err(ConfigError::OutOfRange {
                param: "timeout",
                requirement: "must be positive",
                got: 0.0,
            });
        }
        Ok(RetryPolicy {
            timeout: Some(timeout),
            max_retries,
            backoff,
        })
    }

    /// True when this policy never times out and never retries.
    pub fn is_noop(&self) -> bool {
        self.timeout.is_none() && self.max_retries == 0
    }

    /// Backoff delay before retry number `attempt + 1` (where `attempt`
    /// is the 0-based index of the attempt that just failed).
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        // Cap the shift so a deep retry chain saturates instead of
        // overflowing.
        self.backoff * (1u64 << attempt.min(20))
    }
}

/// Per-run fault accounting reported in [`RunStats`].
///
/// All counters cover the measurement window only, mirroring
/// `RunStats::completed`.
///
/// [`RunStats`]: crate::RunStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Attempts abandoned because they exceeded the per-request timeout.
    pub timeouts: u64,
    /// Retry attempts issued (after timeouts or server failures).
    pub retries: u64,
    /// Logical requests dropped after exhausting the retry budget.
    pub dropped: u64,
    /// Logical requests resolved either way: successes plus drops. The
    /// offered/goodput split of the run.
    pub offered: u64,
    /// Outage-plan events that could not be scheduled (a window opening
    /// in the simulated past). The run degrades — the unschedulable
    /// window is skipped and counted — instead of panicking.
    pub plan_skipped: u64,
}

/// A deterministic outage schedule for every server in a cluster.
#[derive(Debug, Clone, Default)]
pub struct ClusterFaults {
    windows: Vec<Vec<DownWindow>>,
}

impl ClusterFaults {
    /// A plan in which no server ever fails.
    pub fn fail_free() -> Self {
        ClusterFaults::default()
    }

    /// Builds a plan by sampling one fault process per server over
    /// `horizon`, seeded by `seed` (one independent stream per server).
    pub fn from_processes(processes: &[FaultProcess], horizon: SimDuration, seed: u64) -> Self {
        let mut injector = FaultInjector::new();
        let ids: Vec<ComponentId> = processes
            .iter()
            .enumerate()
            .map(|(i, p)| injector.add(&format!("server-{i}"), *p))
            .collect();
        let trace = injector.trace(horizon, seed);
        ClusterFaults {
            windows: ids.iter().map(|&id| trace.windows(id).to_vec()).collect(),
        }
    }

    /// Builds a plan from an existing trace: `components[i]` is the trace
    /// component standing in for server `i`.
    pub fn from_trace(trace: &FaultTrace, components: &[ComponentId]) -> Self {
        ClusterFaults {
            windows: components
                .iter()
                .map(|&id| trace.windows(id).to_vec())
                .collect(),
        }
    }

    /// A plan with exactly one outage: server `victim` is down during
    /// `[down_at, down_at + outage)`.
    pub fn single_outage(victim: usize, down_at: SimTime, outage: SimDuration) -> Self {
        let mut windows = vec![Vec::new(); victim + 1];
        windows[victim] = vec![DownWindow {
            down_at,
            up_at: down_at + outage,
        }];
        ClusterFaults { windows }
    }

    /// Overrides server `server`'s outage windows (must be sorted and
    /// disjoint, as produced by [`FaultProcess::windows`]).
    pub fn set_windows(&mut self, server: usize, windows: Vec<DownWindow>) {
        if self.windows.len() <= server {
            self.windows.resize_with(server + 1, Vec::new);
        }
        self.windows[server] = windows;
    }

    /// Number of servers this plan describes. Servers beyond this count
    /// are implicitly fail-free.
    pub fn planned_servers(&self) -> usize {
        self.windows.len()
    }

    /// Server `server`'s outage windows (empty if unplanned).
    pub fn windows_for(&self, server: usize) -> &[DownWindow] {
        self.windows.get(server).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True when no server has any outage scheduled.
    pub fn is_fail_free(&self) -> bool {
        self.windows.iter().all(Vec::is_empty)
    }

    /// Mean per-server availability over `horizon`, averaged across
    /// `servers` servers (unplanned servers count as fully available).
    pub fn mean_availability(&self, servers: u32, horizon: SimDuration) -> f64 {
        if servers == 0 || horizon.is_zero() {
            return 1.0;
        }
        let mut total = 0.0;
        for s in 0..servers as usize {
            let down = downtime(self.windows_for(s), horizon);
            total += 1.0 - down.as_secs_f64() / horizon.as_secs_f64();
        }
        total / servers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn noop_policy_is_noop() {
        let p = RetryPolicy::none();
        assert!(p.is_noop());
        assert_eq!(p.backoff_for(3), SimDuration::ZERO);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy::new(secs(1.0), 5, SimDuration::from_millis(10)).unwrap();
        assert_eq!(p.backoff_for(0), SimDuration::from_millis(10));
        assert_eq!(p.backoff_for(1), SimDuration::from_millis(20));
        assert_eq!(p.backoff_for(2), SimDuration::from_millis(40));
        // A deep chain saturates rather than overflowing.
        assert!(p.backoff_for(60) > SimDuration::ZERO);
    }

    #[test]
    fn zero_timeout_rejected() {
        assert!(RetryPolicy::new(SimDuration::ZERO, 1, SimDuration::ZERO).is_err());
    }

    #[test]
    fn fail_free_plan() {
        let plan = ClusterFaults::fail_free();
        assert!(plan.is_fail_free());
        assert!(plan.windows_for(7).is_empty());
        assert_eq!(plan.mean_availability(16, secs(100.0)), 1.0);
    }

    #[test]
    fn single_outage_plan() {
        let plan = ClusterFaults::single_outage(2, SimTime::ZERO + secs(10.0), secs(5.0));
        assert!(!plan.is_fail_free());
        assert!(plan.windows_for(0).is_empty());
        assert_eq!(plan.windows_for(2).len(), 1);
        // 4 servers, one down 5s of 100s: mean availability 1 - 5/400.
        let a = plan.mean_availability(4, secs(100.0));
        assert!((a - (1.0 - 5.0 / 400.0)).abs() < 1e-12, "availability {a}");
    }

    #[test]
    fn from_processes_is_deterministic() {
        let p = FaultProcess::exponential(secs(100.0), secs(5.0)).unwrap();
        let a = ClusterFaults::from_processes(&[p, p, p], secs(10_000.0), 7);
        let b = ClusterFaults::from_processes(&[p, p, p], secs(10_000.0), 7);
        for s in 0..3 {
            assert_eq!(a.windows_for(s), b.windows_for(s));
            assert!(!a.windows_for(s).is_empty());
        }
    }
}
