//! Overload-resilience primitives: admission control, retry budgets,
//! and per-backend circuit breakers.
//!
//! The paper's Perf/TCO-$ argument assumes ensembles keep serving
//! through component failure; Hamilton's modular-datacenter argument
//! (PAPERS.md) makes service-level resilience the whole point of
//! commodity warehouse hardware. This module supplies the serving-side
//! half of that story, as three independent, seeded state machines:
//!
//! * A **token-bucket admission controller** ([`TokenBucket`]) sheds
//!   load at the open-loop entry before it queues, dropping
//!   low-priority work first (a reserve floor keeps high-priority
//!   requests admitted while low-priority ones shed).
//! * A **global retry budget** ([`RetryBudget`]) caps retry
//!   amplification: tokens accrue as a fixed ratio of offered requests
//!   and every retry spends one, so a fault burst cannot multiply
//!   offered load without bound — the classic retry-storm defence.
//! * A **per-backend circuit breaker** ([`CircuitBreaker`]) trips open
//!   after consecutive failures, fails fast while open, and probes with
//!   a bounded number of half-open requests before closing again. Trip
//!   and probe schedules are deterministic: open-window jitter draws
//!   from the pure [`SimRng::stream`] keyed on (seed, backend, trip
//!   count), never from call order.
//!
//! Everything here follows the workspace's pay-for-what-you-use
//! invariant: a [`ResilienceConfig::disabled`] layer performs no RNG
//! draws and no event-schedule changes, so a disabled run is
//! bit-identical to one that never heard of resilience.

use wcs_simcore::{SimDuration, SimRng, SimTime};

/// Scheduling class of a request at the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive interactive work; shed last.
    High,
    /// Best-effort work (batch, background refresh); shed first.
    Low,
}

/// Token-bucket admission control with a low-priority reserve floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Token refill rate, tokens per simulated second. Sized relative to
    /// the backend's capacity: admission begins shedding once offered
    /// load sustains above this rate.
    pub rate_rps: f64,
    /// Bucket capacity (burst tolerance), in tokens.
    pub burst: f64,
    /// Low-priority requests are admitted only while at least this many
    /// tokens remain after the spend — the reserve kept for
    /// high-priority work.
    pub low_reserve: f64,
    /// Fraction of arrivals classed [`Priority::Low`], assigned per
    /// request from a pure seeded stream.
    pub low_fraction: f64,
}

impl AdmissionConfig {
    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics on non-finite or negative parameters, a zero rate, or a
    /// `low_fraction` outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.rate_rps.is_finite() && self.rate_rps > 0.0,
            "admission rate must be positive"
        );
        assert!(
            self.burst.is_finite() && self.burst >= 1.0,
            "admission burst must hold at least one token"
        );
        assert!(
            self.low_reserve.is_finite() && self.low_reserve >= 0.0,
            "low-priority reserve must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.low_fraction),
            "low fraction must be in [0, 1]"
        );
    }
}

/// The admission controller's live state: a lazily refilled token
/// bucket over simulated time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    cfg: AdmissionConfig,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A full bucket at simulated time zero.
    pub fn new(cfg: AdmissionConfig) -> Self {
        cfg.validate();
        TokenBucket {
            cfg,
            tokens: cfg.burst,
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.cfg.rate_rps).min(self.cfg.burst);
        self.last = now;
    }

    /// Admits or sheds one request of the given priority at `now`.
    /// High-priority work needs one token; low-priority work is
    /// admitted only while the spend leaves the configured reserve.
    pub fn try_admit(&mut self, now: SimTime, priority: Priority) -> bool {
        self.refill(now);
        let floor = match priority {
            Priority::High => 0.0,
            Priority::Low => self.cfg.low_reserve,
        };
        if self.tokens - 1.0 >= floor {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refill to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }
}

/// Global retry-budget parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetConfig {
    /// Tokens accrued per offered logical request. A ratio of 0.1 means
    /// steady-state retry amplification is capped at 10% of offered
    /// load no matter how many faults land at once.
    pub ratio: f64,
    /// Tokens available before any request is offered (the cold-start
    /// allowance).
    pub initial: f64,
    /// Accrual ceiling, in tokens.
    pub cap: f64,
}

impl RetryBudgetConfig {
    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics on non-finite or negative fields, or a cap below the
    /// initial allowance.
    pub fn validate(&self) {
        assert!(
            self.ratio.is_finite() && self.ratio >= 0.0,
            "retry-budget ratio must be non-negative"
        );
        assert!(
            self.initial.is_finite() && self.initial >= 0.0,
            "retry-budget initial allowance must be non-negative"
        );
        assert!(
            self.cap.is_finite() && self.cap >= self.initial,
            "retry-budget cap must cover the initial allowance"
        );
    }
}

/// The live retry budget: spends are bounded by
/// `initial + ratio * offered` by construction.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    cfg: RetryBudgetConfig,
    tokens: f64,
    offered: u64,
    accrued_through: u64,
    spent: u64,
    denied: u64,
}

impl RetryBudget {
    /// A budget holding its initial allowance.
    pub fn new(cfg: RetryBudgetConfig) -> Self {
        cfg.validate();
        RetryBudget {
            cfg,
            tokens: cfg.initial,
            offered: 0,
            accrued_through: 0,
            spent: 0,
            denied: 0,
        }
    }

    /// Accrues budget for one offered logical request. The accrual
    /// itself is lazy — a bare counter increment here, with the token
    /// arithmetic batched into [`try_spend`](Self::try_spend) — so a
    /// run that never retries pays one integer add per request.
    /// Batching preserves the semantics: tokens are only observed at
    /// spend points, and positive accruals under a ceiling satisfy
    /// `min(cap, min(cap, t + r) + r) = min(cap, t + 2r)`, so the
    /// deferred sum lands where per-request accrual would (up to
    /// floating-point rounding, which the ceiling bounds either way).
    pub fn on_request(&mut self) {
        self.offered += 1;
    }

    fn accrue(&mut self) {
        let fresh = self.offered - self.accrued_through;
        if fresh > 0 {
            self.tokens = (self.tokens + self.cfg.ratio * fresh as f64).min(self.cfg.cap);
            self.accrued_through = self.offered;
        }
    }

    /// Spends one token for a retry, or denies it when the budget is
    /// exhausted.
    pub fn try_spend(&mut self) -> bool {
        self.accrue();
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.spent += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Retries granted so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Retries denied so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// The hard ceiling on spends given the requests offered so far.
    /// `spent() <= ceiling()` is an invariant of the state machine.
    pub fn ceiling(&self) -> f64 {
        self.cfg.initial + self.cfg.ratio * self.offered as f64
    }
}

/// Per-backend circuit-breaker parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Base open window before the first half-open probe.
    pub open_for: SimDuration,
    /// Maximum jitter added to each open window, as a fraction of
    /// `open_for` (0 disables jitter). Drawn from the pure
    /// [`SimRng::stream`] keyed on (seed, backend, trip count), so the
    /// schedule is independent of event order and thread count.
    pub jitter: f64,
    /// Requests allowed through while half-open; one success closes the
    /// breaker, one failure re-opens it.
    pub half_open_probes: u32,
}

impl BreakerConfig {
    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics on a zero threshold, zero open window, zero probe count,
    /// or a jitter outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.failure_threshold > 0, "breaker needs a threshold");
        assert!(!self.open_for.is_zero(), "open window must be positive");
        assert!(
            (0.0..=1.0).contains(&self.jitter),
            "jitter must be in [0, 1]"
        );
        assert!(self.half_open_probes > 0, "need at least one probe");
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { until: SimTime },
    HalfOpen { probes_issued: u32 },
}

/// A per-backend circuit breaker: closed → open → half-open, with
/// deterministic trip and probe schedules.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    seed: u64,
    backend: u64,
    state: BreakerState,
    trips: u64,
    opened_at: Option<SimTime>,
    open_ns: u64,
}

impl CircuitBreaker {
    /// A closed breaker for one backend. `seed` anchors the jitter
    /// stream; `backend` distinguishes breakers sharing a seed.
    pub fn new(cfg: BreakerConfig, seed: u64, backend: u64) -> Self {
        cfg.validate();
        CircuitBreaker {
            cfg,
            seed,
            backend,
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
            trips: 0,
            opened_at: None,
            open_ns: 0,
        }
    }

    fn open_window(&self) -> SimDuration {
        if self.cfg.jitter == 0.0 {
            return self.cfg.open_for;
        }
        // Pure stream keyed on (seed, backend, trip count): the jitter
        // of trip k is a constant of the configuration, not of when or
        // in what order record_failure was called.
        let mut rng = SimRng::stream(
            self.seed ^ 0xB4EA_4E0F,
            self.backend
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(self.trips),
        );
        let scale = 1.0 + self.cfg.jitter * rng.uniform();
        SimDuration::from_secs_f64(self.cfg.open_for.as_secs_f64() * scale)
    }

    fn leave_open(&mut self, now: SimTime) {
        if let Some(at) = self.opened_at.take() {
            self.open_ns += now.saturating_sub(at).as_nanos();
        }
    }

    /// Whether a request may be routed to this backend at `now`. An
    /// expired open window transitions to half-open here. Does not
    /// consume a probe — pair with [`note_dispatch`](Self::note_dispatch)
    /// once the request is actually routed.
    pub fn admits(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until } => {
                if now >= until {
                    self.leave_open(now);
                    self.state = BreakerState::HalfOpen { probes_issued: 0 };
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen { probes_issued } => probes_issued < self.cfg.half_open_probes,
        }
    }

    /// Consumes a half-open probe slot for a routed request (no-op when
    /// closed).
    pub fn note_dispatch(&mut self) {
        if let BreakerState::HalfOpen { probes_issued } = &mut self.state {
            *probes_issued += 1;
        }
    }

    /// Records a successful outcome: closes a half-open breaker, resets
    /// the closed failure streak.
    pub fn record_success(&mut self, now: SimTime) {
        match self.state {
            BreakerState::HalfOpen { .. } => {
                self.leave_open(now);
                self.state = BreakerState::Closed {
                    consecutive_failures: 0,
                };
            }
            BreakerState::Closed { .. } => {
                self.state = BreakerState::Closed {
                    consecutive_failures: 0,
                };
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Records a failed outcome: advances the closed failure streak
    /// (tripping at the threshold) or re-opens a half-open breaker.
    pub fn record_failure(&mut self, now: SimTime) {
        match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let streak = consecutive_failures + 1;
                if streak >= self.cfg.failure_threshold {
                    self.trip(now);
                } else {
                    self.state = BreakerState::Closed {
                        consecutive_failures: streak,
                    };
                }
            }
            BreakerState::HalfOpen { .. } => {
                self.leave_open(now);
                self.trip(now);
            }
            BreakerState::Open { .. } => {}
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.trips += 1;
        let window = self.open_window();
        self.opened_at = Some(now);
        self.state = BreakerState::Open {
            until: now + window,
        };
    }

    /// True while the breaker is open (fast-failing) at `now`, without
    /// transitioning state.
    pub fn is_open(&self, now: SimTime) -> bool {
        matches!(self.state, BreakerState::Open { until } if now < until)
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Total nanoseconds spent open, finalized through `now` (a breaker
    /// still open at the end of a run counts its tail).
    pub fn open_ns(&self, now: SimTime) -> u64 {
        match self.opened_at {
            Some(at) => self.open_ns + now.saturating_sub(at).as_nanos(),
            None => self.open_ns,
        }
    }
}

/// The resilience layer's configuration: each mechanism is independent
/// and optional, and an all-`None` layer is exactly absent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResilienceConfig {
    /// Token-bucket admission control at the open-loop entry.
    pub admission: Option<AdmissionConfig>,
    /// Global retry budget replacing unconditional retries.
    pub retry_budget: Option<RetryBudgetConfig>,
    /// Per-backend circuit breakers.
    pub breaker: Option<BreakerConfig>,
}

impl ResilienceConfig {
    /// The disabled layer: no admission, no budget, no breakers. Runs
    /// configured with this are bit-identical to runs that never
    /// constructed a resilience layer at all.
    pub fn disabled() -> Self {
        ResilienceConfig::default()
    }

    /// True when every mechanism is off.
    pub fn is_disabled(&self) -> bool {
        self.admission.is_none() && self.retry_budget.is_none() && self.breaker.is_none()
    }

    /// The standard serving profile: admission at 1.2x the backend's
    /// capacity with a 25% low-priority reserve, a 10% retry budget,
    /// and 3-strike breakers probing after a jittered open window.
    /// `capacity_rps` sizes the admission bucket; pass the measured
    /// steady-state capacity of the backend being protected.
    pub fn standard(capacity_rps: f64) -> Self {
        ResilienceConfig {
            admission: Some(AdmissionConfig {
                rate_rps: capacity_rps * 1.2,
                burst: (capacity_rps * 0.25).max(8.0),
                low_reserve: (capacity_rps * 0.05).max(2.0),
                low_fraction: 0.2,
            }),
            retry_budget: Some(RetryBudgetConfig {
                ratio: 0.1,
                initial: 8.0,
                cap: 64.0,
            }),
            breaker: Some(BreakerConfig {
                failure_threshold: 3,
                open_for: SimDuration::from_millis(25),
                jitter: 0.2,
                half_open_probes: 2,
            }),
        }
    }

    /// [`standard`](Self::standard) with the retry-budget ratio
    /// overridden (the `--retry-budget` CLI knob).
    pub fn with_retry_ratio(mut self, ratio: f64) -> Self {
        let base = self.retry_budget.unwrap_or(RetryBudgetConfig {
            ratio,
            initial: 8.0,
            cap: 64.0,
        });
        self.retry_budget = Some(RetryBudgetConfig { ratio, ..base });
        self
    }

    /// Validates every configured mechanism.
    ///
    /// # Panics
    /// Panics when any configured mechanism has invalid parameters.
    pub fn validate(&self) {
        if let Some(a) = &self.admission {
            a.validate();
        }
        if let Some(b) = &self.retry_budget {
            b.validate();
        }
        if let Some(b) = &self.breaker {
            b.validate();
        }
    }

    /// Folds the configuration into a memo key lane (every field, so
    /// cached resilient runs can never alias across configs).
    pub fn memo_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h = (h ^ x).wrapping_mul(0x0000_0100_0000_01B3);
            h ^= h >> 29;
        };
        match &self.admission {
            None => mix(0),
            Some(a) => {
                mix(1);
                mix(a.rate_rps.to_bits());
                mix(a.burst.to_bits());
                mix(a.low_reserve.to_bits());
                mix(a.low_fraction.to_bits());
            }
        }
        match &self.retry_budget {
            None => mix(0),
            Some(b) => {
                mix(1);
                mix(b.ratio.to_bits());
                mix(b.initial.to_bits());
                mix(b.cap.to_bits());
            }
        }
        match &self.breaker {
            None => mix(0),
            Some(b) => {
                mix(1);
                mix(u64::from(b.failure_threshold));
                mix(b.open_for.as_nanos());
                mix(b.jitter.to_bits());
                mix(u64::from(b.half_open_probes));
            }
        }
        h
    }
}

/// Per-run resilience accounting, reported alongside
/// [`RunStats`](crate::RunStats) by the resilient entry points. Covers
/// the whole run (warmup included) — shed decisions before the
/// measurement window still shape the window, so the full-run view is
/// the meaningful one. All-zero when the layer is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Logical requests that reached the admission point.
    pub offered: u64,
    /// Requests admitted past the token bucket.
    pub admitted: u64,
    /// Low-priority requests shed by admission control.
    pub shed_low: u64,
    /// High-priority requests shed by admission control.
    pub shed_high: u64,
    /// Requests failed fast by an open breaker (no backend attempt).
    pub breaker_fast_fails: u64,
    /// Breaker trips across every backend.
    pub breaker_trips: u64,
    /// Nanoseconds of breaker-open time summed across backends.
    pub breaker_open_ns: u64,
    /// Retries granted by the budget.
    pub retries_spent: u64,
    /// Retries denied by an exhausted budget (the request dropped).
    pub retries_denied: u64,
}

impl ResilienceStats {
    /// Requests shed by admission control, both classes.
    pub fn shed(&self) -> u64 {
        self.shed_low + self.shed_high
    }

    /// Fraction of offered requests shed at admission.
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed() as f64 / self.offered as f64
        }
    }

    /// Retry amplification: total attempts per admitted request
    /// (1.0 = no retries).
    pub fn retry_amplification(&self) -> f64 {
        if self.admitted == 0 {
            1.0
        } else {
            1.0 + self.retries_spent as f64 / self.admitted as f64
        }
    }

    /// Fraction of `span` the breakers spent open, averaged over
    /// `backends`.
    pub fn breaker_open_fraction(&self, span: SimDuration, backends: u32) -> f64 {
        if span.is_zero() || backends == 0 {
            return 0.0;
        }
        self.breaker_open_ns as f64 / (span.as_nanos() as f64 * f64::from(backends))
    }
}

/// Assigns the priority of arrival number `index` from a pure stream:
/// independent of event order, thread count, and every other RNG draw
/// in the run.
pub fn priority_for(seed: u64, index: u64, low_fraction: f64) -> Priority {
    if low_fraction <= 0.0 {
        return Priority::High;
    }
    if SimRng::stream(seed ^ 0x4D41_7001, index).chance(low_fraction) {
        Priority::Low
    } else {
        Priority::High
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(ms_v: u64) -> SimTime {
        SimTime::ZERO + ms(ms_v)
    }

    #[test]
    fn bucket_sheds_low_priority_first() {
        let mut b = TokenBucket::new(AdmissionConfig {
            rate_rps: 100.0,
            burst: 4.0,
            low_reserve: 2.0,
            low_fraction: 0.5,
        });
        // Burst of 4 tokens: low admits while > reserve stays intact.
        assert!(b.try_admit(SimTime::ZERO, Priority::Low)); // 4 -> 3
        assert!(b.try_admit(SimTime::ZERO, Priority::Low)); // 3 -> 2
        assert!(!b.try_admit(SimTime::ZERO, Priority::Low), "reserve floor");
        assert!(b.try_admit(SimTime::ZERO, Priority::High)); // 2 -> 1
        assert!(b.try_admit(SimTime::ZERO, Priority::High)); // 1 -> 0
        assert!(!b.try_admit(SimTime::ZERO, Priority::High), "bucket empty");
        // 20 ms at 100/s refills 2 tokens: high admits again, low not.
        assert!(!b.try_admit(at(20), Priority::Low));
        assert!(b.try_admit(at(20), Priority::High));
    }

    #[test]
    fn bucket_refill_caps_at_burst() {
        let mut b = TokenBucket::new(AdmissionConfig {
            rate_rps: 1000.0,
            burst: 5.0,
            low_reserve: 0.0,
            low_fraction: 0.0,
        });
        for _ in 0..5 {
            assert!(b.try_admit(SimTime::ZERO, Priority::High));
        }
        assert!(!b.try_admit(SimTime::ZERO, Priority::High));
        let avail = b.available(at(1000));
        assert!((avail - 5.0).abs() < 1e-9, "capped at burst: {avail}");
    }

    #[test]
    fn retry_budget_never_exceeds_ceiling() {
        let cfg = RetryBudgetConfig {
            ratio: 0.1,
            initial: 2.0,
            cap: 50.0,
        };
        let mut b = RetryBudget::new(cfg);
        let mut rng = SimRng::seed_from(99);
        for _ in 0..10_000 {
            if rng.chance(0.7) {
                b.on_request();
            } else {
                let _ = b.try_spend();
            }
            assert!(
                (b.spent() as f64) <= b.ceiling() + 1e-9,
                "spent {} ceiling {}",
                b.spent(),
                b.ceiling()
            );
        }
        assert!(b.denied() > 0, "an adversarial mix must hit the budget");
    }

    #[test]
    fn breaker_trips_probes_and_closes() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            open_for: ms(10),
            jitter: 0.0,
            half_open_probes: 2,
        };
        let mut b = CircuitBreaker::new(cfg, 7, 0);
        assert!(b.admits(SimTime::ZERO));
        b.record_failure(at(1));
        b.record_failure(at(2));
        assert!(b.admits(at(2)), "below threshold stays closed");
        b.record_failure(at(3));
        assert!(b.is_open(at(3)));
        assert!(!b.admits(at(5)), "open fast-fails");
        assert_eq!(b.trips(), 1);
        // Window expires: half-open admits up to 2 probes.
        assert!(b.admits(at(14)));
        b.note_dispatch();
        assert!(b.admits(at(14)));
        b.note_dispatch();
        assert!(!b.admits(at(14)), "probe slots exhausted");
        // A probe success closes; failure streak resets.
        b.record_success(at(15));
        assert!(b.admits(at(15)));
        assert!(b.open_ns(at(15)) >= ms(10).as_nanos());
    }

    #[test]
    fn half_open_failure_reopens() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            open_for: ms(5),
            jitter: 0.0,
            half_open_probes: 1,
        };
        let mut b = CircuitBreaker::new(cfg, 3, 1);
        b.record_failure(at(0));
        assert!(b.is_open(at(1)));
        assert!(b.admits(at(6)), "half-open probe");
        b.note_dispatch();
        b.record_failure(at(7));
        assert!(b.is_open(at(8)), "probe failure re-opens");
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn breaker_jitter_is_pure_per_trip() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            open_for: ms(10),
            jitter: 0.5,
            half_open_probes: 1,
        };
        // Two breakers with identical (seed, backend) trip at different
        // times but produce the same open-window length per trip count.
        let window_after_trip = |fail_at: SimTime| {
            let mut b = CircuitBreaker::new(cfg, 42, 3);
            b.record_failure(fail_at);
            let BreakerState::Open { until } = b.state else {
                panic!("tripped breaker is open");
            };
            until.saturating_sub(fail_at)
        };
        let w1 = window_after_trip(at(1));
        let w2 = window_after_trip(at(999));
        assert_eq!(w1, w2, "jitter depends on (seed, backend, trip), not time");
        assert!(w1 >= ms(10) && w1 <= ms(15), "jitter within bound: {w1:?}");
        // A different backend draws a different (but still pure) jitter.
        let mut other = CircuitBreaker::new(cfg, 42, 4);
        other.record_failure(at(1));
        let BreakerState::Open { until } = other.state else {
            panic!("tripped breaker is open");
        };
        assert!(until.saturating_sub(at(1)) >= ms(10));
    }

    #[test]
    fn priority_stream_is_pure_and_proportional() {
        let n = 10_000u64;
        let low = (0..n)
            .filter(|&i| priority_for(11, i, 0.2) == Priority::Low)
            .count() as f64;
        let frac = low / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "low fraction {frac}");
        // Pure: same (seed, index) always answers the same.
        for i in [0u64, 17, 9999] {
            assert_eq!(priority_for(11, i, 0.2), priority_for(11, i, 0.2));
        }
        assert_eq!(priority_for(5, 3, 0.0), Priority::High);
    }

    #[test]
    fn disabled_config_is_disabled_and_standard_is_not() {
        assert!(ResilienceConfig::disabled().is_disabled());
        let std = ResilienceConfig::standard(1000.0);
        assert!(!std.is_disabled());
        std.validate();
        let tuned = std.with_retry_ratio(0.25);
        assert!((tuned.retry_budget.unwrap().ratio - 0.25).abs() < 1e-12);
        assert_ne!(std.memo_digest(), tuned.memo_digest());
        assert_eq!(
            std.memo_digest(),
            ResilienceConfig::standard(1000.0).memo_digest()
        );
    }

    #[test]
    fn stats_derived_metrics() {
        let s = ResilienceStats {
            offered: 100,
            admitted: 80,
            shed_low: 15,
            shed_high: 5,
            retries_spent: 8,
            ..Default::default()
        };
        assert_eq!(s.shed(), 20);
        assert!((s.shed_fraction() - 0.2).abs() < 1e-12);
        assert!((s.retry_amplification() - 1.1).abs() < 1e-12);
        assert_eq!(ResilienceStats::default().retry_amplification(), 1.0);
        assert_eq!(ResilienceStats::default().shed_fraction(), 0.0);
    }
}
