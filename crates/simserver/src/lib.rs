//! Queueing-network server performance simulator.
//!
//! This crate plays the role the COTSon full-system simulator plays in the
//! paper: given a platform and a workload, it produces the sustainable
//! throughput under the workload's QoS bound.
//!
//! A server is modelled as four service stations:
//!
//! * **CPU** — an `m`-server FCFS queue (`m` = hardware cores),
//! * **Memory** — a single-server station modelling capacity-driven
//!   admission work (buffer-cache churn, index residency),
//! * **Disk** and **NIC** — single-server FCFS queues.
//!
//! A request visits stations in a workload-defined stage sequence. Clients
//! are **closed-loop**: `n` concurrent clients each keep exactly one
//! request in flight, mirroring the paper's client driver, which "adapts
//! the number of simultaneous clients according to recently observed QoS
//! results, to achieve the highest level of throughput without
//! overloading the servers". [`driver::find_max_throughput`] performs that
//! adaptation: it searches for the largest client count whose p95 latency
//! still meets the QoS bound and reports the throughput there.
//!
//! # Example
//! ```
//! use wcs_simcore::{SimDuration, SimRng};
//! use wcs_simserver::{Resource, ServerSpec, Stage, ServerSim, RequestSource};
//!
//! struct Fixed;
//! impl RequestSource for Fixed {
//!     fn next_request(&mut self, _rng: &mut SimRng) -> Vec<Stage> {
//!         vec![Stage::new(Resource::Cpu, SimDuration::from_micros(500))]
//!     }
//! }
//!
//! let spec = ServerSpec::new(2); // two cores
//! let stats = ServerSim::new(spec).run_closed_loop(&mut Fixed, 4, 100, 1000, 7);
//! assert!(stats.throughput_rps() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod cluster;
pub mod driver;
mod engine;
pub mod failover;
pub mod openloop;
mod request;
pub mod resilience;
pub mod tracing;

pub use batch::{run_batch, BatchResult};
pub use cluster::{Cluster, Dispatch};
pub use driver::{find_max_throughput, QosSpec, ThroughputResult};
pub use engine::{RunStats, ServerSim, ServerSpec};
pub use failover::{ClusterFaults, FaultStats, RetryPolicy};
pub use openloop::{run_open_loop, run_open_loop_profiled, run_open_loop_resilient, RateProfile};
pub use request::{RequestSource, Resource, Stage};
pub use resilience::{
    AdmissionConfig, BreakerConfig, CircuitBreaker, Priority, ResilienceConfig, ResilienceStats,
    RetryBudget, RetryBudgetConfig, TokenBucket,
};
pub use tracing::{trace_closed_loop, RequestTrace, StageVisit};
