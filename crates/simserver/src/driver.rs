//! The adaptive client driver: find the highest sustainable throughput
//! that still meets the workload's QoS bound.

use std::fmt;

use wcs_simcore::event::QueueObs;
use wcs_simcore::SimDuration;

use crate::engine::{RunStats, ServerSim};
use crate::request::{RequestSource, Resource};

/// A quality-of-service requirement, e.g. websearch's ">95% of queries
/// take <0.5 seconds" (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QosSpec {
    /// The percentile that must meet the bound (e.g. 95.0).
    pub percentile: f64,
    /// The latency bound.
    pub bound: SimDuration,
}

impl QosSpec {
    /// Creates a QoS spec.
    ///
    /// # Panics
    /// Panics unless `percentile` is in `(0, 100)` and the bound is
    /// non-zero.
    pub fn new(percentile: f64, bound: SimDuration) -> Self {
        assert!(
            percentile > 0.0 && percentile < 100.0,
            "percentile must be in (0, 100)"
        );
        assert!(!bound.is_zero(), "QoS bound must be positive");
        QosSpec { percentile, bound }
    }

    /// True when the run's latencies meet this bound.
    pub fn met_by(&self, stats: &RunStats) -> bool {
        match stats.latency.percentile(self.percentile) {
            Some(p) => p <= self.bound.as_secs_f64(),
            None => false,
        }
    }
}

/// Error: the QoS bound cannot be met even with a single client — the
/// platform is simply too slow for the workload's latency requirement.
#[derive(Debug, Clone, PartialEq)]
pub struct QosInfeasible {
    /// p-th percentile latency observed with one client, in seconds.
    pub single_client_latency: f64,
    /// The bound that was violated, in seconds.
    pub bound: f64,
}

impl fmt::Display for QosInfeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QoS infeasible: single-client latency {:.4}s exceeds bound {:.4}s",
            self.single_client_latency, self.bound
        )
    }
}

impl std::error::Error for QosInfeasible {}

/// Result of the adaptive throughput search.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Highest sustainable throughput meeting the QoS, requests/second.
    pub rps: f64,
    /// Client count at which it was achieved.
    pub clients: u32,
    /// Latency at the QoS percentile at that operating point, seconds.
    pub latency_at_qos: f64,
    /// The busiest resource at that operating point.
    pub bottleneck: Resource,
    /// Utilization of the bottleneck resource.
    pub bottleneck_utilization: f64,
    /// Event-queue occupancy accumulated over *every* probe run of the
    /// search (ramp, refinement, and the returned operating point). The
    /// probe sequence is a pure function of the inputs, so these
    /// counters are deterministic and can be recorded as exact-class
    /// observability series.
    pub queue: QueueObs,
}

/// Tuning parameters for the search.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Warmup requests discarded per run.
    pub warmup: u64,
    /// Measured requests per run.
    pub measured: u64,
    /// Hard cap on the client count explored.
    pub max_clients: u32,
    /// Base RNG seed; each probe run derives its seed from this.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            warmup: 500,
            measured: 4000,
            max_clients: 4096,
            seed: 0xC0F_FEE,
        }
    }
}

/// Finds the maximum sustainable throughput under `qos`, mirroring the
/// paper's adaptive client driver.
///
/// `make_source` is called once per probe run so every run sees an
/// identically distributed, independent request stream.
///
/// The search doubles the client count until the QoS breaks (or
/// throughput stops improving), then binary-searches the boundary. The
/// best QoS-passing operating point is returned.
///
/// # Errors
/// Returns [`QosInfeasible`] when even a single closed-loop client
/// violates the bound.
pub fn find_max_throughput(
    sim: &ServerSim,
    make_source: &mut dyn FnMut() -> Box<dyn RequestSource>,
    qos: QosSpec,
    config: SearchConfig,
) -> Result<ThroughputResult, QosInfeasible> {
    let mut queue = QueueObs::default();
    let mut probe = |n: u32| -> RunStats {
        let mut source = make_source();
        let stats = sim.run_closed_loop(
            source.as_mut(),
            n,
            config.warmup,
            config.measured,
            config.seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        queue = queue.merged(&stats.queue);
        stats
    };

    let first = probe(1);
    if !qos.met_by(&first) {
        return Err(QosInfeasible {
            single_client_latency: first.latency.percentile(qos.percentile).unwrap_or(f64::NAN),
            bound: qos.bound.as_secs_f64(),
        });
    }

    let mut best = (1u32, first);
    // Exponential ramp.
    let mut lo = 1u32;
    let mut hi = None;
    let mut n = 2u32;
    while n <= config.max_clients {
        let stats = probe(n);
        if qos.met_by(&stats) {
            if stats.throughput_rps() > best.1.throughput_rps() {
                best = (n, stats);
            }
            lo = n;
            n = n.saturating_mul(2);
        } else {
            hi = Some(n);
            break;
        }
    }
    // Binary refinement between the last passing and first failing count.
    if let Some(mut hi) = hi {
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let stats = probe(mid);
            if qos.met_by(&stats) {
                if stats.throughput_rps() > best.1.throughput_rps() {
                    best = (mid, stats);
                }
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    let (clients, stats) = best;
    let (bottleneck, util) = stats.bottleneck();
    Ok(ThroughputResult {
        rps: stats.throughput_rps(),
        clients,
        latency_at_qos: stats.latency.percentile(qos.percentile).unwrap_or(f64::NAN),
        bottleneck,
        bottleneck_utilization: util,
        queue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServerSpec;
    use crate::request::Stage;
    use wcs_simcore::SimRng;

    fn exp_cpu_source(mean_us: u64) -> Box<dyn RequestSource> {
        Box::new(move |rng: &mut SimRng| {
            vec![Stage::new(
                Resource::Cpu,
                rng.exp_duration(SimDuration::from_micros(mean_us)),
            )]
        })
    }

    #[test]
    fn finds_near_capacity_throughput_with_loose_qos() {
        // 1 ms mean service on 2 cores = 2000 RPS capacity; a 100 ms
        // bound is loose, so the driver should get close.
        let sim = ServerSim::new(ServerSpec::new(2));
        let qos = QosSpec::new(95.0, SimDuration::from_millis(100));
        let res = find_max_throughput(
            &sim,
            &mut || exp_cpu_source(1000),
            qos,
            SearchConfig::default(),
        )
        .unwrap();
        assert!(res.rps > 1800.0, "rps {}", res.rps);
        assert!(res.rps < 2100.0, "rps {}", res.rps);
        assert_eq!(res.bottleneck, Resource::Cpu);
    }

    #[test]
    fn tight_qos_reduces_throughput() {
        let sim = ServerSim::new(ServerSpec::new(2));
        let loose = find_max_throughput(
            &sim,
            &mut || exp_cpu_source(1000),
            QosSpec::new(95.0, SimDuration::from_millis(100)),
            SearchConfig::default(),
        )
        .unwrap();
        // The original expectation (`tight.rps < loose.rps`, strictly)
        // was wrong: a tighter QoS can only *weakly* reduce sustainable
        // throughput. Per Section 2.1 the driver adapts the client count
        // to the highest throughput "without overloading the servers";
        // a closed-loop 2-core server saturates at 2 eager clients, so
        // both bounds can converge on the same saturated operating point
        // and tie exactly. The monotone property is `<=`, and the tight
        // result must additionally satisfy its own (tighter) bound.
        let tight = find_max_throughput(
            &sim,
            &mut || exp_cpu_source(1000),
            QosSpec::new(95.0, SimDuration::from_micros(4500)),
            SearchConfig::default(),
        )
        .unwrap();
        assert!(tight.rps <= loose.rps, "{} !<= {}", tight.rps, loose.rps);
        assert!(tight.latency_at_qos <= 4.5e-3);
    }

    #[test]
    fn infeasible_when_service_exceeds_bound() {
        let sim = ServerSim::new(ServerSpec::new(1));
        let mut make = || -> Box<dyn RequestSource> {
            Box::new(|_rng: &mut SimRng| {
                vec![Stage::new(Resource::Cpu, SimDuration::from_millis(10))]
            })
        };
        let err = find_max_throughput(
            &sim,
            &mut make,
            QosSpec::new(95.0, SimDuration::from_millis(1)),
            SearchConfig::default(),
        )
        .unwrap_err();
        assert!(err.single_client_latency > err.bound);
        assert!(err.to_string().contains("QoS infeasible"));
    }

    #[test]
    fn deterministic_search() {
        let sim = ServerSim::new(ServerSpec::new(2));
        let qos = QosSpec::new(95.0, SimDuration::from_millis(20));
        let a = find_max_throughput(
            &sim,
            &mut || exp_cpu_source(700),
            qos,
            SearchConfig::default(),
        )
        .unwrap();
        let b = find_max_throughput(
            &sim,
            &mut || exp_cpu_source(700),
            qos,
            SearchConfig::default(),
        )
        .unwrap();
        assert_eq!(a.rps, b.rps);
        assert_eq!(a.clients, b.clients);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn qos_rejects_bad_percentile() {
        QosSpec::new(100.0, SimDuration::from_millis(1));
    }
}
