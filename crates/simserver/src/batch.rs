//! Batch-job execution: run a fixed set of tasks to completion and report
//! the makespan (for the `mapreduce` benchmarks, whose metric is
//! execution time rather than throughput).

use std::collections::VecDeque;

use wcs_simcore::event::QueueObs;
use wcs_simcore::{EventQueue, SimDuration, SimTime};

use crate::engine::ServerSpec;
use crate::request::{Resource, Stage};

/// Result of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Time from start until the last task completed.
    pub makespan: SimDuration,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Per-resource busy fraction over the makespan, indexed by
    /// [`Resource::index`].
    pub utilization: [f64; 4],
    /// Event-queue occupancy counters for the run — a pure function of
    /// the task set, so safe to record as exact-class observability.
    pub queue: QueueObs,
}

impl BatchResult {
    /// The batch performance metric: 1 / makespan-seconds (bigger is
    /// better, consistent with the throughput metrics).
    pub fn perf(&self) -> f64 {
        let s = self.makespan.as_secs_f64();
        if s > 0.0 {
            1.0 / s
        } else {
            f64::INFINITY
        }
    }
}

struct Task {
    stages: Vec<Stage>,
    next_stage: usize,
}

#[derive(Clone, Copy)]
struct StageDone {
    task: usize,
    resource: Resource,
}

/// Executes `tasks` on the server with at most `concurrency` tasks in
/// flight (Hadoop's task-slot model; the paper uses 4 slots per CPU).
///
/// Tasks are admitted in order as slots free up; each task's stages run
/// serially, queueing FCFS at each station.
///
/// # Panics
/// Panics if `concurrency` is zero.
pub fn run_batch(spec: ServerSpec, tasks: Vec<Vec<Stage>>, concurrency: u32) -> BatchResult {
    assert!(concurrency > 0, "need at least one task slot");
    let n_tasks = tasks.len();
    let mut tasks: Vec<Task> = tasks
        .into_iter()
        .map(|stages| Task {
            stages,
            next_stage: 0,
        })
        .collect();

    let mut events: EventQueue<StageDone> = EventQueue::new();
    let mut queues: [VecDeque<usize>; 4] = Default::default();
    let mut busy = [0u32; 4];
    let mut busy_time_ns = [0u128; 4];
    let mut next_admit = 0usize;
    let mut done = 0usize;

    let servers_at = |r: Resource| -> u32 {
        match r {
            Resource::Cpu => spec.cores,
            Resource::Memory => spec.memory_channels,
            Resource::Disk => spec.disks,
            Resource::Net => spec.nics,
        }
    };

    // Enqueue a task's current stage; returns false when the task has no
    // stages left (it is complete).
    fn enqueue(tasks: &[Task], queues: &mut [VecDeque<usize>; 4], id: usize) -> bool {
        let t = &tasks[id];
        if t.next_stage >= t.stages.len() {
            return false;
        }
        let r = t.stages[t.next_stage].resource;
        queues[r.index()].push_back(id);
        true
    }

    macro_rules! try_start {
        ($res:expr, $now:expr) => {{
            let ri = $res.index();
            while busy[ri] < servers_at($res) {
                let Some(id) = queues[ri].pop_front() else {
                    break;
                };
                busy[ri] += 1;
                let service = tasks[id].stages[tasks[id].next_stage].service;
                busy_time_ns[ri] += service.as_nanos() as u128;
                events.schedule(
                    $now + service,
                    StageDone {
                        task: id,
                        resource: $res,
                    },
                );
            }
        }};
    }

    // Admit the initial window of tasks (empty tasks complete at t=0).
    let mut inflight = 0u32;
    while next_admit < n_tasks && inflight < concurrency {
        if enqueue(&tasks, &mut queues, next_admit) {
            inflight += 1;
        } else {
            done += 1;
        }
        next_admit += 1;
    }
    for r in Resource::ALL {
        try_start!(r, SimTime::ZERO);
    }

    // Batched epoch delivery: identical-service task batches make this
    // engine epoch-dense, so draining each instant as one slice replaces
    // a lane comparison per event with one per epoch. Each event is
    // still processed (and `try_start` run) in exact pop order, so the
    // schedule-call sequence — and with it every seq tie-break — is
    // bit-identical to the one-at-a-time loop.
    let mut epoch: Vec<StageDone> = Vec::new();
    while let Some(now) = events.pop_epoch(&mut epoch) {
        for ev in epoch.drain(..) {
            busy[ev.resource.index()] -= 1;
            tasks[ev.task].next_stage += 1;
            if !enqueue(&tasks, &mut queues, ev.task) {
                done += 1;
                inflight -= 1;
                // Admit the next waiting task(s).
                while next_admit < n_tasks && inflight < concurrency {
                    if enqueue(&tasks, &mut queues, next_admit) {
                        inflight += 1;
                    } else {
                        done += 1;
                    }
                    next_admit += 1;
                }
            }
            for r in Resource::ALL {
                try_start!(r, now);
            }
        }
    }
    debug_assert_eq!(done, n_tasks);

    let makespan = events.now().saturating_sub(SimTime::ZERO);
    let span_ns = makespan.as_nanos() as f64;
    let mut utilization = [0.0; 4];
    if span_ns > 0.0 {
        for r in Resource::ALL {
            utilization[r.index()] =
                busy_time_ns[r.index()] as f64 / (span_ns * servers_at(r) as f64);
        }
    }
    BatchResult {
        makespan,
        tasks: n_tasks,
        utilization,
        queue: events.obs_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_task(ms: u64) -> Vec<Stage> {
        vec![Stage::new(Resource::Cpu, SimDuration::from_millis(ms))]
    }

    #[test]
    fn serial_tasks_sum_on_one_core() {
        let res = run_batch(ServerSpec::new(1), vec![cpu_task(10); 10], 4);
        assert_eq!(res.makespan, SimDuration::from_millis(100));
        assert_eq!(res.tasks, 10);
    }

    #[test]
    fn cores_divide_makespan() {
        let one = run_batch(ServerSpec::new(1), vec![cpu_task(10); 16], 16);
        let four = run_batch(ServerSpec::new(4), vec![cpu_task(10); 16], 16);
        assert_eq!(one.makespan.as_nanos(), 4 * four.makespan.as_nanos());
    }

    #[test]
    fn concurrency_limits_overlap() {
        // Two-stage tasks: disk 10 ms then CPU 10 ms. With concurrency 1
        // nothing overlaps: 8 tasks x 20 ms = 160 ms. With concurrency 2,
        // disk and CPU pipeline: ~90 ms.
        let task = || {
            vec![
                Stage::new(Resource::Disk, SimDuration::from_millis(10)),
                Stage::new(Resource::Cpu, SimDuration::from_millis(10)),
            ]
        };
        let tasks: Vec<_> = (0..8).map(|_| task()).collect();
        let serial = run_batch(ServerSpec::new(1), tasks.clone(), 1);
        let piped = run_batch(ServerSpec::new(1), tasks, 2);
        assert_eq!(serial.makespan, SimDuration::from_millis(160));
        assert!(piped.makespan < SimDuration::from_millis(100));
    }

    #[test]
    fn perf_is_reciprocal_makespan() {
        let res = run_batch(ServerSpec::new(1), vec![cpu_task(500)], 1);
        assert!((res.perf() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_degenerate_tasks() {
        let res = run_batch(ServerSpec::new(2), vec![], 4);
        assert_eq!(res.tasks, 0);
        assert_eq!(res.makespan, SimDuration::ZERO);
        let res = run_batch(ServerSpec::new(2), vec![vec![], vec![], cpu_task(1)], 1);
        assert_eq!(res.tasks, 3);
        assert_eq!(res.makespan, SimDuration::from_millis(1));
    }

    #[test]
    fn utilization_reported() {
        let res = run_batch(ServerSpec::new(1), vec![cpu_task(10); 4], 4);
        assert!((res.utilization[Resource::Cpu.index()] - 1.0).abs() < 1e-9);
        assert_eq!(res.utilization[Resource::Disk.index()], 0.0);
    }

    #[test]
    #[should_panic(expected = "task slot")]
    fn rejects_zero_concurrency() {
        run_batch(ServerSpec::new(1), vec![], 0);
    }
}
