//! Requests, stages, and request sources.

use std::fmt;

use wcs_simcore::{SimDuration, SimRng};

/// The service stations of the simulated server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Resource {
    /// Multi-core processor (an `m`-server station).
    Cpu,
    /// Memory-capacity admission work (buffer-cache churn).
    Memory,
    /// Disk subsystem.
    Disk,
    /// Network interface.
    Net,
}

impl Resource {
    /// All stations, in a fixed order for indexing.
    pub const ALL: [Resource; 4] = [
        Resource::Cpu,
        Resource::Memory,
        Resource::Disk,
        Resource::Net,
    ];

    /// Index of this resource into per-resource arrays.
    pub fn index(self) -> usize {
        match self {
            Resource::Cpu => 0,
            Resource::Memory => 1,
            Resource::Disk => 2,
            Resource::Net => 3,
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::Cpu => "cpu",
            Resource::Memory => "memory",
            Resource::Disk => "disk",
            Resource::Net => "net",
        };
        f.write_str(s)
    }
}

/// One step of a request's lifecycle: a resource and the service time the
/// request needs on it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Stage {
    /// The station this stage runs on.
    pub resource: Resource,
    /// Service time required (queueing delay not included).
    pub service: SimDuration,
}

impl Stage {
    /// Creates a stage.
    pub fn new(resource: Resource, service: SimDuration) -> Self {
        Stage { resource, service }
    }
}

/// A source of requests: each call returns the next request's stage list.
///
/// Workload models implement this; stage service times should already be
/// scaled to the platform under test. Returning an empty stage list is
/// allowed and models a request served entirely from in-core caches with
/// negligible demand (completes instantly).
pub trait RequestSource {
    /// Generates the next request.
    fn next_request(&mut self, rng: &mut SimRng) -> Vec<Stage>;
}

impl<F> RequestSource for F
where
    F: FnMut(&mut SimRng) -> Vec<Stage>,
{
    fn next_request(&mut self, rng: &mut SimRng) -> Vec<Stage> {
        self(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_indices_are_dense_and_unique() {
        let mut seen = [false; 4];
        for r in Resource::ALL {
            assert!(!seen[r.index()]);
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn closures_are_sources() {
        let mut src =
            |_rng: &mut SimRng| vec![Stage::new(Resource::Cpu, SimDuration::from_micros(1))];
        let mut rng = SimRng::seed_from(0);
        let req = src.next_request(&mut rng);
        assert_eq!(req.len(), 1);
        assert_eq!(req[0].resource, Resource::Cpu);
    }

    #[test]
    fn display_names() {
        assert_eq!(Resource::Cpu.to_string(), "cpu");
        assert_eq!(Resource::Net.to_string(), "net");
    }
}
