//! Open-loop (Poisson-arrival) simulation.
//!
//! The closed-loop driver models the paper's client harness; the open
//! loop models production traffic, where arrivals do not wait for
//! completions. Open-loop runs expose overload behaviour (queues grow
//! without bound past saturation) that closed loops hide, so the suite
//! provides both.

use std::collections::VecDeque;

use wcs_simcore::stats::Histogram;
use wcs_simcore::{EventQueue, SimDuration, SimRng, SimTime};

use crate::engine::{RunStats, ServerSpec};
use crate::request::{RequestSource, Resource};

struct InFlight {
    stages: Vec<crate::request::Stage>,
    next_stage: usize,
    started: SimTime,
}

enum Event {
    Arrival,
    StageDone { req: usize, resource: Resource },
}

/// A piecewise-constant arrival-rate modulation, cycled over simulated
/// time: the offered rate during segment `i` is the run's base rate
/// times `multipliers[i % len]`, each segment lasting `seg_dur`.
///
/// Traffic packs (diurnal curves, flash crowds, failover surges) render
/// to a `RateProfile` before reaching the simulator, so the open loop
/// itself stays a dumb, deterministic interpreter: the same profile and
/// seed always produce the same arrival stream.
#[derive(Clone, Debug, PartialEq)]
pub struct RateProfile {
    seg_dur: SimDuration,
    multipliers: Vec<f64>,
}

impl RateProfile {
    /// A constant profile: the base rate, unmodified. `run_open_loop`
    /// with this profile is bit-identical to the unprofiled entry point.
    pub fn constant() -> Self {
        RateProfile {
            seg_dur: SimDuration::from_secs(1),
            multipliers: vec![1.0],
        }
    }

    /// Builds a profile from explicit segments.
    ///
    /// # Panics
    /// Panics if `seg_dur` is zero, `multipliers` is empty, or any
    /// multiplier is not positive and finite (a zero rate would stall
    /// the arrival stream forever).
    pub fn new(seg_dur: SimDuration, multipliers: Vec<f64>) -> Self {
        assert!(!seg_dur.is_zero(), "segment duration must be positive");
        assert!(
            !multipliers.is_empty(),
            "profile needs at least one segment"
        );
        assert!(
            multipliers.iter().all(|m| m.is_finite() && *m > 0.0),
            "multipliers must be positive and finite"
        );
        RateProfile {
            seg_dur,
            multipliers,
        }
    }

    /// The rate multiplier in effect at simulated time `t` (cyclic).
    pub fn multiplier_at(&self, t: SimTime) -> f64 {
        let seg = (t.as_nanos() / self.seg_dur.as_nanos()) as usize;
        self.multipliers[seg % self.multipliers.len()]
    }

    /// Largest multiplier in the cycle (the peak offered load).
    pub fn peak(&self) -> f64 {
        self.multipliers.iter().copied().fold(f64::MIN, f64::max)
    }

    /// Time-average multiplier over one cycle.
    pub fn mean(&self) -> f64 {
        self.multipliers.iter().sum::<f64>() / self.multipliers.len() as f64
    }

    /// Duration of one full cycle.
    pub fn cycle(&self) -> SimDuration {
        SimDuration::from_nanos(self.seg_dur.as_nanos() * self.multipliers.len() as u64)
    }

    /// True when the profile never modulates the base rate.
    pub fn is_constant(&self) -> bool {
        self.multipliers.iter().all(|m| *m == 1.0)
    }
}

/// Runs an open-loop simulation: requests arrive as a Poisson process of
/// rate `lambda_rps` and queue at the stations regardless of how many
/// are already in flight.
///
/// Returns statistics over the requests completing after `warmup`
/// completions. If the offered load exceeds capacity, the run still
/// terminates (it measures the first `warmup + measured` completions)
/// but latencies will be enormous — which is the point.
///
/// # Panics
/// Panics if `lambda_rps` is not positive and finite, or `measured` is
/// zero.
pub fn run_open_loop(
    spec: ServerSpec,
    source: &mut dyn RequestSource,
    lambda_rps: f64,
    warmup: u64,
    measured: u64,
    seed: u64,
) -> RunStats {
    run_open_loop_profiled(
        spec,
        source,
        lambda_rps,
        &RateProfile::constant(),
        warmup,
        measured,
        seed,
    )
}

/// Runs an open-loop simulation whose Poisson arrival rate is modulated
/// by `profile`: at any instant the offered rate is `lambda_rps` times
/// the profile's multiplier at that simulated time.
///
/// Each arrival samples its inter-arrival gap from the rate in effect
/// when it is scheduled (a piecewise-stationary approximation of an
/// inhomogeneous Poisson process — exact within a segment, and fully
/// deterministic for a given seed). With `RateProfile::constant()` this
/// is bit-identical to [`run_open_loop`], which merely delegates here.
///
/// # Panics
/// Panics if `lambda_rps` is not positive and finite, or `measured` is
/// zero.
pub fn run_open_loop_profiled(
    spec: ServerSpec,
    source: &mut dyn RequestSource,
    lambda_rps: f64,
    profile: &RateProfile,
    warmup: u64,
    measured: u64,
    seed: u64,
) -> RunStats {
    assert!(
        lambda_rps.is_finite() && lambda_rps > 0.0,
        "arrival rate must be positive"
    );
    assert!(measured > 0, "need a measurement window");
    let mut rng = SimRng::seed_from(seed);
    let mut arrival_rng = rng.fork(1);
    let iat_at = |t: SimTime| -> SimDuration {
        SimDuration::from_secs_f64(1.0 / (lambda_rps * profile.multiplier_at(t)))
    };

    let mut events: EventQueue<Event> = EventQueue::new();
    let mut inflight: Vec<InFlight> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut queues: [VecDeque<usize>; 4] = Default::default();
    let mut busy = [0u32; 4];
    let mut busy_ns = [0u128; 4];

    let servers_at = |r: Resource| -> u32 {
        match r {
            Resource::Cpu => spec.cores,
            Resource::Memory => spec.memory_channels,
            Resource::Disk => spec.disks,
            Resource::Net => spec.nics,
        }
    };

    let target = warmup + measured;
    let mut completed: u64 = 0;
    let mut completed_measured: u64 = 0;
    let mut latency = Histogram::new();
    let mut measure_start = SimTime::ZERO;

    events.schedule(
        SimTime::ZERO + arrival_rng.exp_duration(iat_at(SimTime::ZERO)),
        Event::Arrival,
    );

    macro_rules! try_start {
        ($res:expr, $now:expr) => {{
            let ri = $res.index();
            while busy[ri] < servers_at($res) {
                let Some(req) = queues[ri].pop_front() else {
                    break;
                };
                busy[ri] += 1;
                let svc = inflight[req].stages[inflight[req].next_stage].service;
                busy_ns[ri] += svc.as_nanos() as u128;
                events.schedule(
                    $now + svc,
                    Event::StageDone {
                        req,
                        resource: $res,
                    },
                );
            }
        }};
    }

    macro_rules! complete {
        ($now:expr, $started:expr) => {{
            completed += 1;
            if completed == warmup {
                measure_start = $now;
                latency = Histogram::new();
            }
            if completed > warmup {
                completed_measured += 1;
            }
            latency.record_duration($now.saturating_sub($started));
        }};
    }

    while completed < target {
        let Some((now, ev)) = events.pop() else { break };
        match ev {
            Event::Arrival => {
                // Schedule the next arrival first so the stream is
                // independent of service completions.
                events.schedule(now + arrival_rng.exp_duration(iat_at(now)), Event::Arrival);
                let stages = source.next_request(&mut rng);
                if stages.is_empty() {
                    complete!(now, now);
                    continue;
                }
                let slot = match free.pop() {
                    Some(s) => {
                        inflight[s] = InFlight {
                            stages,
                            next_stage: 0,
                            started: now,
                        };
                        s
                    }
                    None => {
                        inflight.push(InFlight {
                            stages,
                            next_stage: 0,
                            started: now,
                        });
                        inflight.len() - 1
                    }
                };
                let r = inflight[slot].stages[0].resource;
                queues[r.index()].push_back(slot);
                try_start!(r, now);
            }
            Event::StageDone { req, resource } => {
                busy[resource.index()] -= 1;
                inflight[req].next_stage += 1;
                if inflight[req].next_stage >= inflight[req].stages.len() {
                    let started = inflight[req].started;
                    complete!(now, started);
                    free.push(req);
                } else {
                    let r = inflight[req].stages[inflight[req].next_stage].resource;
                    queues[r.index()].push_back(req);
                    try_start!(r, now);
                }
                try_start!(resource, now);
            }
        }
    }

    let end = events.now();
    let window = end.saturating_sub(measure_start);
    let span = end.saturating_sub(SimTime::ZERO).as_nanos() as f64;
    let mut utilization = [0.0; 4];
    if span > 0.0 {
        for r in Resource::ALL {
            utilization[r.index()] =
                (busy_ns[r.index()] as f64 / (span * servers_at(r) as f64)).min(1.0);
        }
    }
    RunStats {
        completed: completed_measured,
        window,
        latency,
        utilization,
        faults: crate::failover::FaultStats::default(),
        queue: events.obs_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Stage;

    fn cpu_source(us: u64) -> impl FnMut(&mut SimRng) -> Vec<Stage> {
        move |rng: &mut SimRng| {
            vec![Stage::new(
                Resource::Cpu,
                rng.exp_duration(SimDuration::from_micros(us)),
            )]
        }
    }

    #[test]
    fn throughput_matches_offered_load_below_saturation() {
        // M/M/2 with 1 ms service, offered 1000 RPS on 2000 RPS capacity.
        let stats = run_open_loop(
            ServerSpec::new(2),
            &mut cpu_source(1000),
            1000.0,
            500,
            5000,
            3,
        );
        let rps = stats.throughput_rps();
        assert!((rps - 1000.0).abs() < 60.0, "rps {rps}");
        let u = stats.utilization[Resource::Cpu.index()];
        assert!((u - 0.5).abs() < 0.05, "util {u}");
    }

    #[test]
    fn mm1_latency_matches_theory() {
        // M/M/1 at rho = 0.5: mean sojourn = s / (1 - rho) = 2 ms.
        let stats = run_open_loop(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            500.0,
            2000,
            20000,
            7,
        );
        let mean = stats.latency.mean();
        assert!((mean - 2e-3).abs() < 4e-4, "mean sojourn {mean}");
    }

    #[test]
    fn overload_shows_unbounded_latency() {
        let ok = run_open_loop(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            800.0,
            200,
            3000,
            9,
        );
        let over = run_open_loop(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            1500.0,
            200,
            3000,
            9,
        );
        let p95_ok = ok.latency.percentile(95.0).unwrap();
        let p95_over = over.latency.percentile(95.0).unwrap();
        assert!(p95_over > 10.0 * p95_ok, "{p95_ok} vs {p95_over}");
        // Throughput saturates at capacity.
        assert!(over.throughput_rps() < 1050.0);
    }

    #[test]
    fn deterministic() {
        let a = run_open_loop(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            100,
            1000,
            5,
        );
        let b = run_open_loop(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            100,
            1000,
            5,
        );
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.window, b.window);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn rejects_zero_rate() {
        run_open_loop(ServerSpec::new(1), &mut cpu_source(1), 0.0, 1, 1, 1);
    }

    #[test]
    fn constant_profile_is_bit_identical_to_unprofiled() {
        let plain = run_open_loop(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            100,
            1000,
            5,
        );
        let profiled = run_open_loop_profiled(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            &RateProfile::constant(),
            100,
            1000,
            5,
        );
        assert_eq!(format!("{plain:?}"), format!("{profiled:?}"));
    }

    #[test]
    fn spike_segment_raises_tail_latency() {
        // Same mean offered load, but one profile crams half the work
        // into a 4x spike: its p99 must be visibly worse.
        let steady = run_open_loop_profiled(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            700.0,
            &RateProfile::constant(),
            200,
            4000,
            11,
        );
        let spiky = run_open_loop_profiled(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            700.0,
            &RateProfile::new(
                SimDuration::from_millis(500),
                vec![0.4, 0.4, 0.4, 2.8, 0.4, 0.4, 0.4, 0.4],
            ),
            200,
            4000,
            11,
        );
        let p99_steady = steady.latency.percentile(99.0).unwrap();
        let p99_spiky = spiky.latency.percentile(99.0).unwrap();
        assert!(p99_spiky > 2.0 * p99_steady, "{p99_steady} vs {p99_spiky}");
    }

    #[test]
    fn profile_cycles_and_reports_shape() {
        let p = RateProfile::new(SimDuration::from_secs(2), vec![0.5, 2.0, 1.0]);
        assert_eq!(p.multiplier_at(SimTime::from_nanos(0)), 0.5);
        assert_eq!(p.multiplier_at(SimTime::from_nanos(2_500_000_000)), 2.0);
        // Wraps around after one 6 s cycle.
        assert_eq!(p.multiplier_at(SimTime::from_nanos(6_100_000_000)), 0.5);
        assert_eq!(p.peak(), 2.0);
        assert!((p.mean() - 3.5 / 3.0).abs() < 1e-12);
        assert_eq!(p.cycle(), SimDuration::from_secs(6));
        assert!(!p.is_constant());
        assert!(RateProfile::constant().is_constant());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_multiplier() {
        RateProfile::new(SimDuration::from_secs(1), vec![1.0, 0.0]);
    }
}
