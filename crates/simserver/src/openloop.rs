//! Open-loop (Poisson-arrival) simulation.
//!
//! The closed-loop driver models the paper's client harness; the open
//! loop models production traffic, where arrivals do not wait for
//! completions. Open-loop runs expose overload behaviour (queues grow
//! without bound past saturation) that closed loops hide, so the suite
//! provides both.

use std::collections::VecDeque;

use wcs_simcore::stats::Histogram;
use wcs_simcore::{EventQueue, SimDuration, SimRng, SimTime};

use crate::engine::{RunStats, ServerSpec};
use crate::request::{RequestSource, Resource};

struct InFlight {
    stages: Vec<crate::request::Stage>,
    next_stage: usize,
    started: SimTime,
}

enum Event {
    Arrival,
    StageDone { req: usize, resource: Resource },
}

/// Runs an open-loop simulation: requests arrive as a Poisson process of
/// rate `lambda_rps` and queue at the stations regardless of how many
/// are already in flight.
///
/// Returns statistics over the requests completing after `warmup`
/// completions. If the offered load exceeds capacity, the run still
/// terminates (it measures the first `warmup + measured` completions)
/// but latencies will be enormous — which is the point.
///
/// # Panics
/// Panics if `lambda_rps` is not positive and finite, or `measured` is
/// zero.
pub fn run_open_loop(
    spec: ServerSpec,
    source: &mut dyn RequestSource,
    lambda_rps: f64,
    warmup: u64,
    measured: u64,
    seed: u64,
) -> RunStats {
    assert!(
        lambda_rps.is_finite() && lambda_rps > 0.0,
        "arrival rate must be positive"
    );
    assert!(measured > 0, "need a measurement window");
    let mut rng = SimRng::seed_from(seed);
    let mut arrival_rng = rng.fork(1);
    let mean_iat = SimDuration::from_secs_f64(1.0 / lambda_rps);

    let mut events: EventQueue<Event> = EventQueue::new();
    let mut inflight: Vec<InFlight> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut queues: [VecDeque<usize>; 4] = Default::default();
    let mut busy = [0u32; 4];
    let mut busy_ns = [0u128; 4];

    let servers_at = |r: Resource| -> u32 {
        match r {
            Resource::Cpu => spec.cores,
            Resource::Memory => spec.memory_channels,
            Resource::Disk => spec.disks,
            Resource::Net => spec.nics,
        }
    };

    let target = warmup + measured;
    let mut completed: u64 = 0;
    let mut completed_measured: u64 = 0;
    let mut latency = Histogram::new();
    let mut measure_start = SimTime::ZERO;

    events.schedule(
        SimTime::ZERO + arrival_rng.exp_duration(mean_iat),
        Event::Arrival,
    );

    macro_rules! try_start {
        ($res:expr, $now:expr) => {{
            let ri = $res.index();
            while busy[ri] < servers_at($res) {
                let Some(req) = queues[ri].pop_front() else {
                    break;
                };
                busy[ri] += 1;
                let svc = inflight[req].stages[inflight[req].next_stage].service;
                busy_ns[ri] += svc.as_nanos() as u128;
                events.schedule(
                    $now + svc,
                    Event::StageDone {
                        req,
                        resource: $res,
                    },
                );
            }
        }};
    }

    macro_rules! complete {
        ($now:expr, $started:expr) => {{
            completed += 1;
            if completed == warmup {
                measure_start = $now;
                latency = Histogram::new();
            }
            if completed > warmup {
                completed_measured += 1;
            }
            latency.record_duration($now.saturating_sub($started));
        }};
    }

    while completed < target {
        let Some((now, ev)) = events.pop() else { break };
        match ev {
            Event::Arrival => {
                // Schedule the next arrival first so the stream is
                // independent of service completions.
                events.schedule(now + arrival_rng.exp_duration(mean_iat), Event::Arrival);
                let stages = source.next_request(&mut rng);
                if stages.is_empty() {
                    complete!(now, now);
                    continue;
                }
                let slot = match free.pop() {
                    Some(s) => {
                        inflight[s] = InFlight {
                            stages,
                            next_stage: 0,
                            started: now,
                        };
                        s
                    }
                    None => {
                        inflight.push(InFlight {
                            stages,
                            next_stage: 0,
                            started: now,
                        });
                        inflight.len() - 1
                    }
                };
                let r = inflight[slot].stages[0].resource;
                queues[r.index()].push_back(slot);
                try_start!(r, now);
            }
            Event::StageDone { req, resource } => {
                busy[resource.index()] -= 1;
                inflight[req].next_stage += 1;
                if inflight[req].next_stage >= inflight[req].stages.len() {
                    let started = inflight[req].started;
                    complete!(now, started);
                    free.push(req);
                } else {
                    let r = inflight[req].stages[inflight[req].next_stage].resource;
                    queues[r.index()].push_back(req);
                    try_start!(r, now);
                }
                try_start!(resource, now);
            }
        }
    }

    let end = events.now();
    let window = end.saturating_sub(measure_start);
    let span = end.saturating_sub(SimTime::ZERO).as_nanos() as f64;
    let mut utilization = [0.0; 4];
    if span > 0.0 {
        for r in Resource::ALL {
            utilization[r.index()] =
                (busy_ns[r.index()] as f64 / (span * servers_at(r) as f64)).min(1.0);
        }
    }
    RunStats {
        completed: completed_measured,
        window,
        latency,
        utilization,
        faults: crate::failover::FaultStats::default(),
        queue: events.obs_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Stage;

    fn cpu_source(us: u64) -> impl FnMut(&mut SimRng) -> Vec<Stage> {
        move |rng: &mut SimRng| {
            vec![Stage::new(
                Resource::Cpu,
                rng.exp_duration(SimDuration::from_micros(us)),
            )]
        }
    }

    #[test]
    fn throughput_matches_offered_load_below_saturation() {
        // M/M/2 with 1 ms service, offered 1000 RPS on 2000 RPS capacity.
        let stats = run_open_loop(
            ServerSpec::new(2),
            &mut cpu_source(1000),
            1000.0,
            500,
            5000,
            3,
        );
        let rps = stats.throughput_rps();
        assert!((rps - 1000.0).abs() < 60.0, "rps {rps}");
        let u = stats.utilization[Resource::Cpu.index()];
        assert!((u - 0.5).abs() < 0.05, "util {u}");
    }

    #[test]
    fn mm1_latency_matches_theory() {
        // M/M/1 at rho = 0.5: mean sojourn = s / (1 - rho) = 2 ms.
        let stats = run_open_loop(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            500.0,
            2000,
            20000,
            7,
        );
        let mean = stats.latency.mean();
        assert!((mean - 2e-3).abs() < 4e-4, "mean sojourn {mean}");
    }

    #[test]
    fn overload_shows_unbounded_latency() {
        let ok = run_open_loop(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            800.0,
            200,
            3000,
            9,
        );
        let over = run_open_loop(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            1500.0,
            200,
            3000,
            9,
        );
        let p95_ok = ok.latency.percentile(95.0).unwrap();
        let p95_over = over.latency.percentile(95.0).unwrap();
        assert!(p95_over > 10.0 * p95_ok, "{p95_ok} vs {p95_over}");
        // Throughput saturates at capacity.
        assert!(over.throughput_rps() < 1050.0);
    }

    #[test]
    fn deterministic() {
        let a = run_open_loop(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            100,
            1000,
            5,
        );
        let b = run_open_loop(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            100,
            1000,
            5,
        );
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.window, b.window);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn rejects_zero_rate() {
        run_open_loop(ServerSpec::new(1), &mut cpu_source(1), 0.0, 1, 1, 1);
    }
}
