//! Open-loop (Poisson-arrival) simulation.
//!
//! The closed-loop driver models the paper's client harness; the open
//! loop models production traffic, where arrivals do not wait for
//! completions. Open-loop runs expose overload behaviour (queues grow
//! without bound past saturation) that closed loops hide, so the suite
//! provides both.

use std::collections::VecDeque;

use wcs_simcore::faults::DownWindow;
use wcs_simcore::stats::Histogram;
use wcs_simcore::{EventQueue, SimDuration, SimRng, SimTime};

use crate::engine::{RunStats, ServerSpec};
use crate::failover::{FaultStats, RetryPolicy};
use crate::request::{RequestSource, Resource, Stage};
use crate::resilience::{
    priority_for, CircuitBreaker, Priority, ResilienceConfig, ResilienceStats, RetryBudget,
    TokenBucket,
};

struct InFlight {
    stages: Vec<crate::request::Stage>,
    next_stage: usize,
    started: SimTime,
    /// 0-based attempt index; always 0 outside the resilient entry
    /// point, which re-dispatches failed work.
    attempt_no: u32,
}

enum Event {
    Arrival,
    StageDone { req: usize, resource: Resource },
}

/// A piecewise-constant arrival-rate modulation, cycled over simulated
/// time: the offered rate during segment `i` is the run's base rate
/// times `multipliers[i % len]`, each segment lasting `seg_dur`.
///
/// Traffic packs (diurnal curves, flash crowds, failover surges) render
/// to a `RateProfile` before reaching the simulator, so the open loop
/// itself stays a dumb, deterministic interpreter: the same profile and
/// seed always produce the same arrival stream.
#[derive(Clone, Debug, PartialEq)]
pub struct RateProfile {
    seg_dur: SimDuration,
    multipliers: Vec<f64>,
}

impl RateProfile {
    /// A constant profile: the base rate, unmodified. `run_open_loop`
    /// with this profile is bit-identical to the unprofiled entry point.
    pub fn constant() -> Self {
        RateProfile {
            seg_dur: SimDuration::from_secs(1),
            multipliers: vec![1.0],
        }
    }

    /// Builds a profile from explicit segments.
    ///
    /// # Panics
    /// Panics if `seg_dur` is zero, `multipliers` is empty, or any
    /// multiplier is not positive and finite (a zero rate would stall
    /// the arrival stream forever).
    pub fn new(seg_dur: SimDuration, multipliers: Vec<f64>) -> Self {
        assert!(!seg_dur.is_zero(), "segment duration must be positive");
        assert!(
            !multipliers.is_empty(),
            "profile needs at least one segment"
        );
        assert!(
            multipliers.iter().all(|m| m.is_finite() && *m > 0.0),
            "multipliers must be positive and finite"
        );
        RateProfile {
            seg_dur,
            multipliers,
        }
    }

    /// The rate multiplier in effect at simulated time `t` (cyclic).
    pub fn multiplier_at(&self, t: SimTime) -> f64 {
        let seg = (t.as_nanos() / self.seg_dur.as_nanos()) as usize;
        self.multipliers[seg % self.multipliers.len()]
    }

    /// Largest multiplier in the cycle (the peak offered load).
    pub fn peak(&self) -> f64 {
        self.multipliers.iter().copied().fold(f64::MIN, f64::max)
    }

    /// Time-average multiplier over one cycle.
    pub fn mean(&self) -> f64 {
        self.multipliers.iter().sum::<f64>() / self.multipliers.len() as f64
    }

    /// Duration of one full cycle.
    pub fn cycle(&self) -> SimDuration {
        SimDuration::from_nanos(self.seg_dur.as_nanos() * self.multipliers.len() as u64)
    }

    /// True when the profile never modulates the base rate.
    pub fn is_constant(&self) -> bool {
        self.multipliers.iter().all(|m| *m == 1.0)
    }

    /// The raw piecewise shape: segment duration and per-segment
    /// multipliers. Chaos planning uses this to co-vary fault hazard
    /// with offered load
    /// ([`FaultProcess::windows_weighted`](wcs_simcore::faults::FaultProcess::windows_weighted)).
    pub fn segments(&self) -> (SimDuration, &[f64]) {
        (self.seg_dur, &self.multipliers)
    }
}

/// Runs an open-loop simulation: requests arrive as a Poisson process of
/// rate `lambda_rps` and queue at the stations regardless of how many
/// are already in flight.
///
/// Returns statistics over the requests completing after `warmup`
/// completions. If the offered load exceeds capacity, the run still
/// terminates (it measures the first `warmup + measured` completions)
/// but latencies will be enormous — which is the point.
///
/// # Panics
/// Panics if `lambda_rps` is not positive and finite, or `measured` is
/// zero.
pub fn run_open_loop(
    spec: ServerSpec,
    source: &mut dyn RequestSource,
    lambda_rps: f64,
    warmup: u64,
    measured: u64,
    seed: u64,
) -> RunStats {
    run_open_loop_profiled(
        spec,
        source,
        lambda_rps,
        &RateProfile::constant(),
        warmup,
        measured,
        seed,
    )
}

/// Runs an open-loop simulation whose Poisson arrival rate is modulated
/// by `profile`: at any instant the offered rate is `lambda_rps` times
/// the profile's multiplier at that simulated time.
///
/// Each arrival samples its inter-arrival gap from the rate in effect
/// when it is scheduled (a piecewise-stationary approximation of an
/// inhomogeneous Poisson process — exact within a segment, and fully
/// deterministic for a given seed). With `RateProfile::constant()` this
/// is bit-identical to [`run_open_loop`], which merely delegates here.
///
/// # Panics
/// Panics if `lambda_rps` is not positive and finite, or `measured` is
/// zero.
pub fn run_open_loop_profiled(
    spec: ServerSpec,
    source: &mut dyn RequestSource,
    lambda_rps: f64,
    profile: &RateProfile,
    warmup: u64,
    measured: u64,
    seed: u64,
) -> RunStats {
    assert!(
        lambda_rps.is_finite() && lambda_rps > 0.0,
        "arrival rate must be positive"
    );
    assert!(measured > 0, "need a measurement window");
    let mut rng = SimRng::seed_from(seed);
    let mut arrival_rng = rng.fork(1);
    let iat_at = |t: SimTime| -> SimDuration {
        SimDuration::from_secs_f64(1.0 / (lambda_rps * profile.multiplier_at(t)))
    };

    let mut events: EventQueue<Event> = EventQueue::new();
    let mut inflight: Vec<InFlight> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut queues: [VecDeque<usize>; 4] = Default::default();
    let mut busy = [0u32; 4];
    let mut busy_ns = [0u128; 4];

    let servers_at = |r: Resource| -> u32 {
        match r {
            Resource::Cpu => spec.cores,
            Resource::Memory => spec.memory_channels,
            Resource::Disk => spec.disks,
            Resource::Net => spec.nics,
        }
    };

    let target = warmup + measured;
    let mut completed: u64 = 0;
    let mut completed_measured: u64 = 0;
    let mut latency = Histogram::new();
    let mut measure_start = SimTime::ZERO;

    events.schedule(
        SimTime::ZERO + arrival_rng.exp_duration(iat_at(SimTime::ZERO)),
        Event::Arrival,
    );

    macro_rules! try_start {
        ($res:expr, $now:expr) => {{
            let ri = $res.index();
            while busy[ri] < servers_at($res) {
                let Some(req) = queues[ri].pop_front() else {
                    break;
                };
                busy[ri] += 1;
                let svc = inflight[req].stages[inflight[req].next_stage].service;
                busy_ns[ri] += svc.as_nanos() as u128;
                events.schedule(
                    $now + svc,
                    Event::StageDone {
                        req,
                        resource: $res,
                    },
                );
            }
        }};
    }

    macro_rules! complete {
        ($now:expr, $started:expr) => {{
            completed += 1;
            if completed == warmup {
                measure_start = $now;
                latency = Histogram::new();
            }
            if completed > warmup {
                completed_measured += 1;
            }
            latency.record_duration($now.saturating_sub($started));
        }};
    }

    while completed < target {
        let Some((now, ev)) = events.pop() else { break };
        match ev {
            Event::Arrival => {
                // Schedule the next arrival first so the stream is
                // independent of service completions.
                events.schedule(now + arrival_rng.exp_duration(iat_at(now)), Event::Arrival);
                let stages = source.next_request(&mut rng);
                if stages.is_empty() {
                    complete!(now, now);
                    continue;
                }
                let slot = match free.pop() {
                    Some(s) => {
                        inflight[s] = InFlight {
                            stages,
                            next_stage: 0,
                            started: now,
                            attempt_no: 0,
                        };
                        s
                    }
                    None => {
                        inflight.push(InFlight {
                            stages,
                            next_stage: 0,
                            started: now,
                            attempt_no: 0,
                        });
                        inflight.len() - 1
                    }
                };
                let r = inflight[slot].stages[0].resource;
                queues[r.index()].push_back(slot);
                try_start!(r, now);
            }
            Event::StageDone { req, resource } => {
                busy[resource.index()] -= 1;
                inflight[req].next_stage += 1;
                if inflight[req].next_stage >= inflight[req].stages.len() {
                    let started = inflight[req].started;
                    complete!(now, started);
                    free.push(req);
                } else {
                    let r = inflight[req].stages[inflight[req].next_stage].resource;
                    queues[r.index()].push_back(req);
                    try_start!(r, now);
                }
                try_start!(resource, now);
            }
        }
    }

    let end = events.now();
    let window = end.saturating_sub(measure_start);
    let span = end.saturating_sub(SimTime::ZERO).as_nanos() as f64;
    let mut utilization = [0.0; 4];
    if span > 0.0 {
        for r in Resource::ALL {
            utilization[r.index()] =
                (busy_ns[r.index()] as f64 / (span * servers_at(r) as f64)).min(1.0);
        }
    }
    RunStats {
        completed: completed_measured,
        window,
        latency,
        utilization,
        faults: crate::failover::FaultStats::default(),
        queue: events.obs_stats(),
    }
}

/// Open-loop events for the resilient entry point. Stage completions
/// carry a slot generation so work voided by a blade outage is skipped
/// when its completion event finally pops.
enum REvent {
    Arrival,
    StageDone {
        req: usize,
        gen: u64,
        resource: Resource,
    },
    Down,
    Up,
    Retry {
        stages: Vec<Stage>,
        started: SimTime,
        attempt_no: u32,
    },
}

/// Runs a profiled open loop through the overload-resilience layer
/// against a single blade that goes down and comes back per `outages`.
///
/// This is the serving entry the tentpole wires into scenarios: open
/// (production) traffic, so overload is visible, plus a fault plan, so
/// flash crowds and blade faults finally meet. The layer applies, in
/// order per arrival:
///
/// 1. **Admission** — each arrival is classed [`Priority::High`] or
///    [`Priority::Low`] from the pure per-index stream
///    ([`priority_for`]) and offered to the token bucket; shed requests
///    resolve immediately and never queue.
/// 2. **Breaker** — an open breaker fails arrivals fast (no queueing,
///    no service); a blade outage's killed work trips it, so the
///    breaker absorbs the arrival flood while the blade is down.
/// 3. **Retry budget** — failed work (outage kills, fast-fails) retries
///    after `retry.backoff_for` only while `retry.max_retries` and the
///    global budget both allow; otherwise it is dropped.
///    `retry.timeout` is ignored here: an open loop has no client to
///    abandon work, and outages already fail in-flight work fast.
///
/// The arrival and request streams are drawn exactly as in
/// [`run_open_loop_profiled`] (shed decisions discard the drawn
/// request rather than skipping the draw), so the offered workload is
/// identical across resilience configurations — only its fate differs.
/// With no outages and [`ResilienceConfig::disabled`] the run
/// reproduces [`run_open_loop_profiled`]'s completions, window,
/// latency, and utilization exactly.
///
/// If faults or shedding keep the run from ever completing
/// `warmup + measured` requests, it still terminates once that many
/// arrivals have *resolved* (completed, shed, or dropped) — degraded,
/// not hanging. [`ResilienceStats`] counters cover the whole run;
/// [`FaultStats`] covers the measurement window.
///
/// # Panics
/// Panics if `lambda_rps` is not positive and finite, `measured` is
/// zero, or `resilience` is misconfigured.
#[allow(clippy::too_many_arguments)]
pub fn run_open_loop_resilient(
    spec: ServerSpec,
    source: &mut dyn RequestSource,
    lambda_rps: f64,
    profile: &RateProfile,
    warmup: u64,
    measured: u64,
    seed: u64,
    outages: &[DownWindow],
    retry: &RetryPolicy,
    resilience: &ResilienceConfig,
) -> (RunStats, ResilienceStats) {
    assert!(
        lambda_rps.is_finite() && lambda_rps > 0.0,
        "arrival rate must be positive"
    );
    assert!(measured > 0, "need a measurement window");
    resilience.validate();
    let mut rng = SimRng::seed_from(seed);
    let mut arrival_rng = rng.fork(1);
    let iat_at = |t: SimTime| -> SimDuration {
        SimDuration::from_secs_f64(1.0 / (lambda_rps * profile.multiplier_at(t)))
    };

    let mut admission: Option<TokenBucket> = resilience.admission.map(TokenBucket::new);
    let low_fraction = resilience.admission.map_or(0.0, |a| a.low_fraction);
    let mut budget: Option<RetryBudget> = resilience.retry_budget.map(RetryBudget::new);
    let mut breaker: Option<CircuitBreaker> = resilience
        .breaker
        .map(|cfg| CircuitBreaker::new(cfg, seed ^ 0xB4EA_0002, 0));
    let mut res_stats = ResilienceStats::default();

    let mut events: EventQueue<REvent> = EventQueue::new();
    let mut inflight: Vec<InFlight> = Vec::new();
    let mut slot_gen: Vec<u64> = Vec::new();
    let mut active: Vec<bool> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut queues: [VecDeque<usize>; 4] = Default::default();
    let mut busy = [0u32; 4];
    let mut busy_ns = [0u128; 4];
    let mut up = true;

    let servers_at = |r: Resource| -> u32 {
        match r {
            Resource::Cpu => spec.cores,
            Resource::Memory => spec.memory_channels,
            Resource::Disk => spec.disks,
            Resource::Net => spec.nics,
        }
    };

    // The whole outage plan up front; generated windows are in-horizon
    // and sorted, so plain `schedule` is safe at time zero.
    for w in outages {
        events.schedule(w.down_at, REvent::Down);
        events.schedule(w.up_at, REvent::Up);
    }

    let target = warmup + measured;
    let mut completed: u64 = 0;
    let mut completed_measured: u64 = 0;
    let mut retries_n: u64 = 0;
    let mut dropped_n: u64 = 0;
    let mut resolved: u64 = 0;
    let mut arrival_idx: u64 = 0;
    let mut latency = Histogram::new();
    let mut measure_start = SimTime::ZERO;

    events.schedule(
        SimTime::ZERO + arrival_rng.exp_duration(iat_at(SimTime::ZERO)),
        REvent::Arrival,
    );

    macro_rules! try_start {
        ($res:expr, $now:expr) => {{
            let ri = $res.index();
            while busy[ri] < servers_at($res) {
                let Some(req) = queues[ri].pop_front() else {
                    break;
                };
                busy[ri] += 1;
                let svc = inflight[req].stages[inflight[req].next_stage].service;
                busy_ns[ri] += svc.as_nanos() as u128;
                events.schedule(
                    $now + svc,
                    REvent::StageDone {
                        req,
                        gen: slot_gen[req],
                        resource: $res,
                    },
                );
            }
        }};
    }

    macro_rules! complete {
        ($now:expr, $started:expr) => {{
            completed += 1;
            resolved += 1;
            if completed == warmup {
                measure_start = $now;
                latency = Histogram::new();
                retries_n = 0;
                dropped_n = 0;
            }
            if completed > warmup {
                completed_measured += 1;
            }
            latency.record_duration($now.saturating_sub($started));
        }};
    }

    // Failed work (outage kill or breaker fast-fail): retry while both
    // the per-request attempt budget and the global budget allow, else
    // drop — the request resolves either way.
    macro_rules! fail_attempt {
        ($stages:expr, $started:expr, $attempt_no:expr, $now:expr) => {{
            let attempt_no: u32 = $attempt_no;
            if attempt_no < retry.max_retries
                && match &mut budget {
                    None => true,
                    Some(b) => b.try_spend(),
                }
            {
                retries_n += 1;
                events.schedule(
                    $now + retry.backoff_for(attempt_no),
                    REvent::Retry {
                        stages: $stages,
                        started: $started,
                        attempt_no: attempt_no + 1,
                    },
                );
            } else {
                dropped_n += 1;
                resolved += 1;
            }
        }};
    }

    // Routes admitted work to the blade, or through the failure path
    // when the blade is down or the breaker refuses.
    macro_rules! dispatch {
        ($stages:expr, $started:expr, $attempt_no:expr, $now:expr) => {{
            let stages: Vec<Stage> = $stages;
            let breaker_refuses = up && breaker.as_mut().is_some_and(|b| !b.admits($now));
            if !up {
                // An attempt against a down blade is a failure the
                // breaker must hear about, so the outage trips it even
                // when little was in flight at the down instant.
                if let Some(b) = &mut breaker {
                    b.record_failure($now);
                }
                fail_attempt!(stages, $started, $attempt_no, $now);
            } else if breaker_refuses {
                res_stats.breaker_fast_fails += 1;
                fail_attempt!(stages, $started, $attempt_no, $now);
            } else {
                if let Some(b) = &mut breaker {
                    b.note_dispatch();
                }
                let first = stages[0].resource;
                let flight = InFlight {
                    stages,
                    next_stage: 0,
                    started: $started,
                    attempt_no: $attempt_no,
                };
                let slot = match free.pop() {
                    Some(s) => {
                        inflight[s] = flight;
                        active[s] = true;
                        s
                    }
                    None => {
                        inflight.push(flight);
                        slot_gen.push(0);
                        active.push(true);
                        inflight.len() - 1
                    }
                };
                queues[first.index()].push_back(slot);
                try_start!(first, $now);
            }
        }};
    }

    while resolved < target {
        let Some((now, ev)) = events.pop() else { break };
        match ev {
            REvent::Arrival => {
                // Next arrival first: the stream is independent of
                // completions, shedding, and faults.
                events.schedule(now + arrival_rng.exp_duration(iat_at(now)), REvent::Arrival);
                let idx = arrival_idx;
                arrival_idx += 1;
                let stages = source.next_request(&mut rng);
                res_stats.offered += 1;
                if let Some(b) = &mut budget {
                    b.on_request();
                }
                if let Some(bucket) = &mut admission {
                    let prio = priority_for(seed, idx, low_fraction);
                    if !bucket.try_admit(now, prio) {
                        match prio {
                            Priority::Low => res_stats.shed_low += 1,
                            Priority::High => res_stats.shed_high += 1,
                        }
                        resolved += 1;
                        continue;
                    }
                }
                res_stats.admitted += 1;
                if stages.is_empty() {
                    complete!(now, now);
                    continue;
                }
                dispatch!(stages, now, 0u32, now);
            }
            REvent::Retry {
                stages,
                started,
                attempt_no,
            } => {
                dispatch!(stages, started, attempt_no, now);
            }
            REvent::Down => {
                up = false;
                // Fail-fast: everything queued or in service dies; the
                // breaker hears about every victim.
                for q in queues.iter_mut() {
                    q.clear();
                }
                busy = [0; 4];
                for slot in 0..inflight.len() {
                    if !active[slot] {
                        continue;
                    }
                    slot_gen[slot] += 1; // voids pending StageDone
                    active[slot] = false;
                    free.push(slot);
                    if let Some(b) = &mut breaker {
                        b.record_failure(now);
                    }
                    let stages = std::mem::take(&mut inflight[slot].stages);
                    let started = inflight[slot].started;
                    let attempt_no = inflight[slot].attempt_no;
                    fail_attempt!(stages, started, attempt_no, now);
                }
            }
            REvent::Up => {
                up = true;
            }
            REvent::StageDone { req, gen, resource } => {
                if slot_gen[req] != gen {
                    continue; // voided by an outage
                }
                busy[resource.index()] -= 1;
                inflight[req].next_stage += 1;
                if inflight[req].next_stage >= inflight[req].stages.len() {
                    slot_gen[req] += 1;
                    active[req] = false;
                    let started = inflight[req].started;
                    complete!(now, started);
                    if let Some(b) = &mut breaker {
                        b.record_success(now);
                    }
                    free.push(req);
                } else {
                    let r = inflight[req].stages[inflight[req].next_stage].resource;
                    queues[r.index()].push_back(req);
                    try_start!(r, now);
                }
                try_start!(resource, now);
            }
        }
    }

    let end = events.now();
    let window = end.saturating_sub(measure_start);
    let span = end.saturating_sub(SimTime::ZERO).as_nanos() as f64;
    let mut utilization = [0.0; 4];
    if span > 0.0 {
        for r in Resource::ALL {
            utilization[r.index()] =
                (busy_ns[r.index()] as f64 / (span * servers_at(r) as f64)).min(1.0);
        }
    }
    if let Some(b) = &budget {
        res_stats.retries_spent = b.spent();
        res_stats.retries_denied = b.denied();
    }
    if let Some(b) = &breaker {
        res_stats.breaker_trips = b.trips();
        res_stats.breaker_open_ns = b.open_ns(end);
    }
    (
        RunStats {
            completed: completed_measured,
            window,
            latency,
            utilization,
            faults: FaultStats {
                timeouts: 0,
                retries: retries_n,
                dropped: dropped_n,
                offered: completed_measured + dropped_n,
                plan_skipped: 0,
            },
            queue: events.obs_stats(),
        },
        res_stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Stage;

    fn cpu_source(us: u64) -> impl FnMut(&mut SimRng) -> Vec<Stage> {
        move |rng: &mut SimRng| {
            vec![Stage::new(
                Resource::Cpu,
                rng.exp_duration(SimDuration::from_micros(us)),
            )]
        }
    }

    #[test]
    fn throughput_matches_offered_load_below_saturation() {
        // M/M/2 with 1 ms service, offered 1000 RPS on 2000 RPS capacity.
        let stats = run_open_loop(
            ServerSpec::new(2),
            &mut cpu_source(1000),
            1000.0,
            500,
            5000,
            3,
        );
        let rps = stats.throughput_rps();
        assert!((rps - 1000.0).abs() < 60.0, "rps {rps}");
        let u = stats.utilization[Resource::Cpu.index()];
        assert!((u - 0.5).abs() < 0.05, "util {u}");
    }

    #[test]
    fn mm1_latency_matches_theory() {
        // M/M/1 at rho = 0.5: mean sojourn = s / (1 - rho) = 2 ms.
        let stats = run_open_loop(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            500.0,
            2000,
            20000,
            7,
        );
        let mean = stats.latency.mean();
        assert!((mean - 2e-3).abs() < 4e-4, "mean sojourn {mean}");
    }

    #[test]
    fn overload_shows_unbounded_latency() {
        let ok = run_open_loop(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            800.0,
            200,
            3000,
            9,
        );
        let over = run_open_loop(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            1500.0,
            200,
            3000,
            9,
        );
        let p95_ok = ok.latency.percentile(95.0).unwrap();
        let p95_over = over.latency.percentile(95.0).unwrap();
        assert!(p95_over > 10.0 * p95_ok, "{p95_ok} vs {p95_over}");
        // Throughput saturates at capacity.
        assert!(over.throughput_rps() < 1050.0);
    }

    #[test]
    fn deterministic() {
        let a = run_open_loop(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            100,
            1000,
            5,
        );
        let b = run_open_loop(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            100,
            1000,
            5,
        );
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.window, b.window);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn rejects_zero_rate() {
        run_open_loop(ServerSpec::new(1), &mut cpu_source(1), 0.0, 1, 1, 1);
    }

    #[test]
    fn constant_profile_is_bit_identical_to_unprofiled() {
        let plain = run_open_loop(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            100,
            1000,
            5,
        );
        let profiled = run_open_loop_profiled(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            &RateProfile::constant(),
            100,
            1000,
            5,
        );
        assert_eq!(format!("{plain:?}"), format!("{profiled:?}"));
    }

    #[test]
    fn spike_segment_raises_tail_latency() {
        // Same mean offered load, but one profile crams half the work
        // into a 4x spike: its p99 must be visibly worse.
        let steady = run_open_loop_profiled(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            700.0,
            &RateProfile::constant(),
            200,
            4000,
            11,
        );
        let spiky = run_open_loop_profiled(
            ServerSpec::new(1),
            &mut cpu_source(1000),
            700.0,
            &RateProfile::new(
                SimDuration::from_millis(500),
                vec![0.4, 0.4, 0.4, 2.8, 0.4, 0.4, 0.4, 0.4],
            ),
            200,
            4000,
            11,
        );
        let p99_steady = steady.latency.percentile(99.0).unwrap();
        let p99_spiky = spiky.latency.percentile(99.0).unwrap();
        assert!(p99_spiky > 2.0 * p99_steady, "{p99_steady} vs {p99_spiky}");
    }

    #[test]
    fn profile_cycles_and_reports_shape() {
        let p = RateProfile::new(SimDuration::from_secs(2), vec![0.5, 2.0, 1.0]);
        assert_eq!(p.multiplier_at(SimTime::from_nanos(0)), 0.5);
        assert_eq!(p.multiplier_at(SimTime::from_nanos(2_500_000_000)), 2.0);
        // Wraps around after one 6 s cycle.
        assert_eq!(p.multiplier_at(SimTime::from_nanos(6_100_000_000)), 0.5);
        assert_eq!(p.peak(), 2.0);
        assert!((p.mean() - 3.5 / 3.0).abs() < 1e-12);
        assert_eq!(p.cycle(), SimDuration::from_secs(6));
        assert!(!p.is_constant());
        assert!(RateProfile::constant().is_constant());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_multiplier() {
        RateProfile::new(SimDuration::from_secs(1), vec![1.0, 0.0]);
    }

    fn fingerprint(stats: &RunStats) -> (u64, u64, String, String) {
        (
            stats.completed,
            stats.window.as_nanos(),
            format!("{:?}", stats.latency),
            format!("{:?}", stats.utilization),
        )
    }

    #[test]
    fn resilient_disabled_no_outages_matches_profiled() {
        let profile = RateProfile::new(SimDuration::from_millis(500), vec![0.5, 1.0, 2.0, 1.0]);
        let plain = run_open_loop_profiled(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            &profile,
            100,
            2000,
            5,
        );
        let (res, stats) = run_open_loop_resilient(
            ServerSpec::new(2),
            &mut cpu_source(500),
            900.0,
            &profile,
            100,
            2000,
            5,
            &[],
            &RetryPolicy::none(),
            &ResilienceConfig::disabled(),
        );
        assert_eq!(fingerprint(&plain), fingerprint(&res));
        assert_eq!(stats.shed(), 0);
        assert_eq!(stats.retries_spent, 0);
        assert_eq!(stats.breaker_trips, 0);
        assert_eq!(stats.offered, stats.admitted);
    }

    #[test]
    fn admission_sheds_overload_and_protects_tail() {
        use crate::resilience::AdmissionConfig;
        // 1500 RPS offered on a 1000 RPS blade: unprotected latency
        // diverges; admission at ~capacity sheds the excess and keeps
        // the served tail bounded.
        let overload = || cpu_source(1000);
        let unprotected = run_open_loop_profiled(
            ServerSpec::new(1),
            &mut overload(),
            1500.0,
            &RateProfile::constant(),
            200,
            4000,
            9,
        );
        let cfg = ResilienceConfig {
            admission: Some(AdmissionConfig {
                rate_rps: 950.0,
                burst: 64.0,
                low_reserve: 8.0,
                low_fraction: 0.3,
            }),
            ..ResilienceConfig::disabled()
        };
        let (protected, stats) = run_open_loop_resilient(
            ServerSpec::new(1),
            &mut overload(),
            1500.0,
            &RateProfile::constant(),
            200,
            4000,
            9,
            &[],
            &RetryPolicy::none(),
            &cfg,
        );
        assert!(stats.shed() > 0, "overload must shed");
        assert!(
            stats.shed_low > stats.shed_high,
            "low priority sheds first: {stats:?}"
        );
        assert!(stats.shed_fraction() > 0.2 && stats.shed_fraction() < 0.6);
        let p99_un = unprotected.latency.percentile(99.0).unwrap();
        let p99_pro = protected.latency.percentile(99.0).unwrap();
        assert!(
            p99_pro < p99_un / 5.0,
            "admission bounds the tail: {p99_pro} vs {p99_un}"
        );
    }

    #[test]
    fn blade_outage_with_budget_is_bounded_and_deterministic() {
        use crate::resilience::{BreakerConfig, RetryBudgetConfig};
        let outage = [DownWindow {
            down_at: SimTime::ZERO + SimDuration::from_millis(800),
            up_at: SimTime::ZERO + SimDuration::from_millis(1600),
        }];
        let retry =
            RetryPolicy::new(SimDuration::from_millis(50), 4, SimDuration::from_millis(2)).unwrap();
        let budget = RetryBudgetConfig {
            ratio: 0.1,
            initial: 4.0,
            cap: 64.0,
        };
        let cfg = ResilienceConfig {
            retry_budget: Some(budget),
            breaker: Some(BreakerConfig {
                failure_threshold: 3,
                open_for: SimDuration::from_millis(40),
                jitter: 0.25,
                half_open_probes: 2,
            }),
            ..ResilienceConfig::disabled()
        };
        let run = || {
            run_open_loop_resilient(
                ServerSpec::new(2),
                &mut cpu_source(800),
                1200.0,
                &RateProfile::constant(),
                200,
                4000,
                13,
                &outage,
                &retry,
                &cfg,
            )
        };
        let (stats, res) = run();
        assert!(res.retries_spent > 0, "outage work retries: {res:?}");
        let ceiling = budget.initial + budget.ratio * res.offered as f64;
        assert!(
            (res.retries_spent as f64) <= ceiling + 1e-9,
            "spent {} > ceiling {ceiling}",
            res.retries_spent
        );
        assert!(res.breaker_trips > 0, "kills trip the breaker: {res:?}");
        assert!(res.breaker_open_ns > 0);
        assert!(stats.faults.dropped > 0 || res.retries_denied > 0);
        let (stats2, res2) = run();
        assert_eq!(stats.completed, stats2.completed);
        assert_eq!(stats.window, stats2.window);
        assert_eq!(res, res2);
    }
}
