//! Property tests for the availability layer, across many seeds:
//!
//! * fault-injection determinism — the same seed always produces a
//!   byte-identical failure trace and identical `RunStats`;
//! * pay-for-what-you-use — zero-rate fault processes and fail-free
//!   plans reproduce the plain simulator's results exactly.

use wcs_simcore::faults::{FaultInjector, FaultProcess};
use wcs_simcore::{SimDuration, SimRng};
use wcs_simserver::{
    Cluster, ClusterFaults, Dispatch, Resource, RetryPolicy, RunStats, ServerSpec, Stage,
};

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

fn source(rng: &mut SimRng) -> Vec<Stage> {
    vec![Stage::new(
        Resource::Cpu,
        rng.exp_duration(SimDuration::from_micros(900)),
    )]
}

/// Everything observable about a run, as one comparable value.
fn fingerprint(stats: &RunStats) -> (u64, u64, String, String, String) {
    (
        stats.completed,
        stats.window.as_nanos(),
        format!("{:?}", stats.latency),
        format!("{:?}", stats.utilization),
        format!("{:?}", stats.faults),
    )
}

fn mixed_injector() -> FaultInjector {
    let mut inj = FaultInjector::new();
    inj.add(
        "exp",
        FaultProcess::exponential(secs(300.0), secs(20.0)).unwrap(),
    );
    inj.add(
        "weibull",
        FaultProcess::weibull(1.5, secs(500.0), secs(10.0)).unwrap(),
    );
    inj.add("never", FaultProcess::never());
    inj
}

#[test]
fn same_seed_means_byte_identical_failure_trace() {
    for seed in 0..24u64 {
        let a = mixed_injector().trace(secs(20_000.0), seed);
        let b = mixed_injector().trace(secs(20_000.0), seed);
        assert_eq!(a.fingerprint(), b.fingerprint(), "seed {seed}");
        assert_eq!(format!("{:?}", a.events()), format!("{:?}", b.events()));
    }
}

#[test]
fn different_seeds_change_the_trace() {
    // Not a hard guarantee per pair, but across 24 seeds at least one
    // must differ from seed 0 or the injector is ignoring its seed.
    let base = mixed_injector().trace(secs(20_000.0), 0).fingerprint();
    assert!(
        (1..24u64).any(|s| mixed_injector().trace(secs(20_000.0), s).fingerprint() != base),
        "every seed produced the same trace"
    );
}

#[test]
fn zero_rate_processes_schedule_nothing() {
    let p = FaultProcess::never();
    for seed in 0..16u64 {
        let mut rng = SimRng::seed_from(seed);
        assert!(p.windows(secs(1e9), &mut rng).is_empty());
    }
}

#[test]
fn fail_free_plan_reproduces_plain_run_exactly() {
    for dispatch in [
        Dispatch::RoundRobin,
        Dispatch::Random,
        Dispatch::LeastLoaded,
    ] {
        for seed in [1u64, 7, 42] {
            let mut cluster = Cluster::ideal(ServerSpec::new(2), 6).unwrap();
            cluster.dispatch = dispatch;
            let plain = cluster
                .run_closed_loop(&mut source, 24, 400, 4_000, seed)
                .unwrap();
            let faulted = cluster
                .run_closed_loop_faulted(
                    &mut source,
                    24,
                    400,
                    4_000,
                    seed,
                    &ClusterFaults::fail_free(),
                    &RetryPolicy::none(),
                )
                .unwrap();
            assert_eq!(
                fingerprint(&plain),
                fingerprint(&faulted),
                "{dispatch:?} seed {seed}"
            );
            assert_eq!(plain.faults.timeouts, 0);
            assert_eq!(plain.faults.dropped, 0);
        }
    }
}

#[test]
fn faulted_runs_are_reproducible_per_seed() {
    let retry = RetryPolicy::new(secs(0.01), 2, SimDuration::from_millis(1)).unwrap();
    for seed in [3u64, 11, 29] {
        let cluster = Cluster::ideal(ServerSpec::new(2), 5).unwrap();
        let plan = ClusterFaults::from_processes(
            &vec![FaultProcess::exponential(secs(0.5), secs(0.05)).unwrap(); 5],
            secs(10.0),
            seed,
        );
        let run = || {
            cluster
                .run_closed_loop_faulted(&mut source, 20, 300, 3_000, seed, &plan, &retry)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(fingerprint(&a), fingerprint(&b), "seed {seed}");
        // The flap plan must actually exercise the fault path.
        assert!(
            a.faults.retries + a.faults.dropped + a.faults.timeouts > 0,
            "seed {seed} produced a fault-free run"
        );
        // Generated plans never open a window in the simulated past, so
        // the degrade path stays dormant — and is still exported.
        assert_eq!(a.faults.plan_skipped, 0, "seed {seed}");
        let registry = wcs_simcore::obs::Registry::new();
        a.export_obs(&registry);
        assert_eq!(
            registry.snapshot().count("recovery.plan_skipped"),
            Some(0),
            "recovery.plan_skipped missing from obs export"
        );
    }
}

#[test]
fn goodput_never_exceeds_offered() {
    let retry = RetryPolicy::new(secs(0.01), 1, SimDuration::from_millis(1)).unwrap();
    for seed in 0..8u64 {
        let cluster = Cluster::ideal(ServerSpec::new(2), 4).unwrap();
        let plan = ClusterFaults::from_processes(
            &[FaultProcess::exponential(secs(1.0), secs(0.1)).unwrap(); 4],
            secs(20.0),
            seed,
        );
        let stats = cluster
            .run_closed_loop_faulted(&mut source, 16, 200, 2_000, seed, &plan, &retry)
            .unwrap();
        assert!(
            stats.goodput_rps() <= stats.offered_rps() + 1e-9,
            "seed {seed}: goodput {} > offered {}",
            stats.goodput_rps(),
            stats.offered_rps()
        );
    }
}
