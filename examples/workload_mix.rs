//! Fleet planning under service mixes: which design wins depends on the
//! mix of services the fleet must carry.
//!
//! Run with `cargo run --release --example workload_mix`.

use wcs::designs::DesignPoint;
use wcs::evaluate::Evaluator;
use wcs::platforms::PlatformId;
use wcs::workloads::mix::WorkloadMix;

fn main() {
    let eval = Evaluator::quick();
    let designs = [
        DesignPoint::baseline_srvr1(),
        DesignPoint::baseline(PlatformId::Emb1),
        DesignPoint::n1(),
        DesignPoint::n2(),
    ];
    let mixes = [
        ("uniform (paper HMean)", WorkloadMix::uniform()),
        ("search portal", WorkloadMix::search_portal()),
        ("media site", WorkloadMix::media_site()),
    ];

    // Evaluate once; normalize each workload's rate to srvr1 (the
    // paper's normalization, so units cancel), then aggregate with the
    // mix's weighted harmonic mean and divide by relative TCO.
    let evals: Vec<_> = designs
        .iter()
        .map(|d| eval.evaluate(d).expect("design evaluates"))
        .collect();
    let base = &evals[0];

    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>8}",
        "mix", "srvr1", "emb1", "N1", "N2"
    );
    for (name, mix) in &mixes {
        print!("{name:<24}");
        for e in &evals {
            let rel_perf: std::collections::BTreeMap<_, _> = e
                .perf
                .iter()
                .map(|(id, v)| (*id, v / base.perf[id]))
                .collect();
            let agg = mix.aggregate_perf(&rel_perf).expect("complete suite");
            let rel_tco = e.report.total_usd() / base.report.total_usd();
            print!(" {:>7.0}%", agg / rel_tco * 100.0);
        }
        println!();
    }

    println!(
        "\nThe media-heavy mix amplifies the unified designs' advantage (ytube is \
         their best case); a search-heavy portal narrows it, since websearch \
         leans hardest on per-core performance."
    );
}
