//! Quickstart: evaluate a platform on the benchmark suite and price it.
//!
//! Run with `cargo run --release --example quickstart`.

use wcs::designs::DesignPoint;
use wcs::evaluate::Evaluator;
use wcs::platforms::PlatformId;
use wcs::report::render_comparison;

fn main() {
    // The evaluator bundles the performance simulator and the paper's
    // cost model (K1 = 1.33, L1 = 0.8, K2 = 0.667, $100/MWh, activity
    // factor 0.75, 3-year depreciation).
    let eval = Evaluator::quick();

    // Evaluate the paper's mid-range server baseline...
    let srvr1 = eval
        .evaluate(&DesignPoint::baseline_srvr1())
        .expect("srvr1 meets every QoS bound");
    println!("{}", srvr1.report);
    println!();

    // ...and the embedded-class alternative.
    let emb1 = eval
        .evaluate(&DesignPoint::baseline(PlatformId::Emb1))
        .expect("emb1 meets every QoS bound");
    println!("{}", emb1.report);
    println!();

    // Per-workload performance.
    println!("Sustained performance:");
    for (id, perf) in &emb1.perf {
        println!(
            "  {:<12} emb1 {:>10.2}  srvr1 {:>10.2}",
            id.label(),
            perf,
            srvr1.perf[id]
        );
    }
    println!();

    // The paper's question: is the slower-but-cheaper platform a better
    // deal per total-cost-of-ownership dollar?
    println!("{}", render_comparison(&emb1.compare(&srvr1)));
}
