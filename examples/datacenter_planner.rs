//! Datacenter capacity planning: how many racks, watts, and dollars does
//! it take to serve a target workload mix at scale with each design?
//!
//! This is the question the paper's introduction motivates — the
//! datacenter is "often the largest capital and operating expense" — so
//! this example scales the per-server results up to a fleet.
//!
//! Run with `cargo run --release --example datacenter_planner`.

use wcs::designs::DesignPoint;
use wcs::evaluate::Evaluator;
use wcs::platforms::PlatformId;
use wcs::workloads::WorkloadId;

/// Target: a service that must sustain this many websearch queries/sec
/// fleet-wide (with the other services sharing the same fleet mix).
const TARGET_WEBSEARCH_RPS: f64 = 100_000.0;

fn main() {
    let eval = Evaluator::quick();
    let designs = [
        DesignPoint::baseline_srvr1(),
        DesignPoint::baseline(PlatformId::Desk),
        DesignPoint::baseline(PlatformId::Emb1),
        DesignPoint::n1(),
        DesignPoint::n2(),
    ];

    println!(
        "Fleet sizing to sustain {:.0} websearch RPS:",
        TARGET_WEBSEARCH_RPS
    );
    println!(
        "{:<8} {:>10} {:>8} {:>12} {:>14} {:>14}",
        "design", "servers", "racks", "fleet kW", "fleet Inf-$", "fleet TCO-$"
    );
    for design in designs {
        let e = match eval.evaluate(&design) {
            Ok(e) => e,
            Err(err) => {
                println!("{:<8} infeasible: {err}", design.name);
                continue;
            }
        };
        let per_server = e.perf[&WorkloadId::Websearch];
        let servers = (TARGET_WEBSEARCH_RPS / per_server).ceil();
        let racks = (servers / e.systems_per_rack as f64).ceil();
        let kw = servers * e.report.power_w() / 1000.0;
        let inf = servers * e.report.inf_usd();
        let tco = servers * e.report.total_usd();
        println!(
            "{:<8} {:>10.0} {:>8.0} {:>12.0} {:>13.1}M {:>13.1}M",
            e.name,
            servers,
            racks,
            kw,
            inf / 1e6,
            tco / 1e6
        );
    }

    println!(
        "\nNote how the unified designs trade more (but far smaller and cheaper) \
         servers for much lower fleet cost and power — the paper's ensemble-level \
         argument. Rack counts also fall despite higher server counts because the \
         new packaging fits 8-32x more systems per rack."
    );
}
