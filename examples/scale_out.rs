//! Scale-out validation: test the paper's cluster-aggregation assumption.
//!
//! Section 4 admits: "our performance model makes the simplifying
//! assumption that cluster-level performance can be approximated by the
//! aggregation of single-machine benchmarks. This needs to be
//! validated." This example does the validation with the cluster
//! simulator: N servers behind a least-loaded dispatcher vs N x the
//! single-server throughput, with and without scale-out overheads.
//!
//! Run with `cargo run --release --example scale_out`.

use wcs::platforms::{catalog, PlatformId};
use wcs::simserver::{Cluster, ServerSim};
use wcs::workloads::service::PlatformDemand;
use wcs::workloads::{suite, WorkloadId};

fn main() {
    let platform = catalog::platform(PlatformId::Emb1);
    let wl = suite::workload(WorkloadId::Websearch);
    let demand = PlatformDemand::new(&wl, &platform);
    let spec = demand.server_spec();

    // Single-server reference throughput at a fixed population.
    let single = ServerSim::new(spec)
        .run_closed_loop(&mut demand.source(1), 16, 300, 4000, 42)
        .throughput_rps();
    println!("single emb1 server: {single:.1} RPS (websearch, 16 clients)");
    println!();

    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>16}",
        "servers", "ideal RPS", "cluster RPS", "efficiency", "w/ 3% overhead"
    );
    for n in [2u32, 4, 8, 16, 32] {
        let ideal = Cluster::ideal(spec, n)
            .expect("non-empty cluster")
            .run_closed_loop(&mut demand.source(2), 16 * n, 300, 4000 * n as u64, 42)
            .expect("valid run parameters")
            .throughput_rps();
        let mut lossy = Cluster::ideal(spec, n).expect("non-empty cluster");
        lossy.scaleout_overhead = 0.03;
        let real = lossy
            .run_closed_loop(&mut demand.source(3), 16 * n, 300, 4000 * n as u64, 42)
            .expect("valid run parameters")
            .throughput_rps();
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>11.1}% {:>15.1}",
            n,
            single * n as f64,
            ideal,
            ideal / (single * n as f64) * 100.0,
            real
        );
    }

    println!(
        "\nWith zero coordination overhead the aggregation assumption holds to \
         within a few percent — queueing at shared stations, not dispatch, \
         dominates. A modest 3% per-doubling software overhead (the Amdahl \
         effects the paper warns about) erodes large ensembles measurably, \
         which is why the suite's demand models carry a per-workload \
         software-scalability factor."
    );
}
