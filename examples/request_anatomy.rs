//! Request anatomy: where does a websearch query spend its time?
//!
//! Uses the tracing runner to decompose per-request latency into queueing
//! and service at each station, on an uncongested and a saturated emb1
//! server — the "why" behind the QoS cliff the adaptive driver walks up
//! to.
//!
//! Run with `cargo run --release --example request_anatomy`.

use wcs::platforms::{catalog, PlatformId};
use wcs::simserver::{trace_closed_loop, Resource};
use wcs::workloads::service::PlatformDemand;
use wcs::workloads::{suite, WorkloadId};

fn main() {
    let wl = suite::workload(WorkloadId::Websearch);
    let platform = catalog::platform(PlatformId::Emb1);
    let demand = PlatformDemand::new(&wl, &platform);
    let spec = demand.server_spec();

    for (label, clients) in [
        ("light load (2 clients)", 2u32),
        ("saturated (48 clients)", 48),
    ] {
        let mut source = demand.source(1);
        let traces = trace_closed_loop(spec, &mut source, clients, 2000, 17);

        let mut queued = [0.0f64; 4];
        let mut service = [0.0f64; 4];
        let mut total_latency = 0.0;
        for t in &traces {
            total_latency += t.latency().as_secs_f64();
            for v in &t.visits {
                queued[v.resource.index()] += v.queued.as_secs_f64();
                service[v.resource.index()] += v.service.as_secs_f64();
            }
        }
        let n = traces.len() as f64;
        println!("{label}: mean latency {:.2} ms", total_latency / n * 1e3);
        for r in Resource::ALL {
            let q = queued[r.index()] / n * 1e3;
            let s = service[r.index()] / n * 1e3;
            if q + s > 1e-4 {
                println!(
                    "  {:<7} service {s:>7.3} ms   queued {q:>7.3} ms",
                    r.to_string()
                );
            }
        }
        println!();
    }

    println!(
        "Under saturation nearly all added latency is CPU queueing — which is why \
         the paper's QoS bound translates directly into a utilization ceiling on \
         the bottleneck station."
    );
}
