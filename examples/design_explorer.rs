//! Design-space exploration: build a *custom* server platform with the
//! builder API, combine it with the ensemble techniques, and see whether
//! it beats the paper's N2 design.
//!
//! Scenario: a hypothetical 4-core 1.0 GHz embedded part ("quad-emb")
//! with a bigger L2 — does widening the embedded chip pay off for
//! warehouse workloads, or does the software-scalability tax eat it?
//!
//! Run with `cargo run --release --example design_explorer`.

use wcs::designs::{CoolingConfig, DesignPoint, MemShareConfig};
use wcs::evaluate::Evaluator;
use wcs::memshare::blade::BladeModel;
use wcs::memshare::link::RemoteLink;
use wcs::memshare::provisioning::Provisioning;
use wcs::platforms::storage::DiskModel;
use wcs::platforms::{CpuModel, MemoryConfig, MemoryTech, Microarch, NicModel, Platform};
use wcs::report::render_comparison;

fn custom_quad_embedded() -> Platform {
    let mut b = Platform::builder("quad-emb");
    b.cpu(
        // 4 cores at 1.0 GHz, out-of-order, 2 MiB shared L2. Costed a
        // little above emb1's dual-core part.
        CpuModel::new(
            "hypothetical quad embedded",
            1,
            4,
            1.0,
            Microarch::OutOfOrder,
            32,
            2048,
        ),
        85.0,
        16.0,
    )
    .memory(MemoryConfig::new(4.0, MemoryTech::Ddr2), 130.0, 12.0)
    .disk(DiskModel::desktop())
    .nic(NicModel::gigabit())
    .board_cost(75.0, 10.0)
    .power_fans_cost(50.0, 8.0);
    b.build()
}

fn main() {
    let eval = Evaluator::quick();
    let baseline = eval
        .evaluate(&DesignPoint::baseline_srvr1())
        .expect("baseline evaluates");

    // The custom platform, packaged like N2 (microblades + memory blade
    // + flash-cached remote laptop disks).
    let custom = DesignPoint {
        name: "N2-quad".into(),
        platform: custom_quad_embedded(),
        cooling: CoolingConfig::microblade(),
        memshare: Some(MemShareConfig {
            provisioning: Provisioning::dynamic_provisioning(),
            blade: BladeModel::paper_default(),
            link: RemoteLink::pcie_x4_cbf(),
            servers_per_blade: 8,
        }),
        storage: Some(wcs::flashcache::study::StorageScenario::laptop_flash()),
    };

    let n2 = eval.evaluate(&DesignPoint::n2()).expect("N2 evaluates");
    let quad = eval.evaluate(&custom).expect("custom design evaluates");

    println!("{}", render_comparison(&n2.compare(&baseline)));
    println!();
    println!("{}", render_comparison(&quad.compare(&baseline)));
    println!();

    let n2_tco = n2.compare(&baseline).hmean(|r| r.perf_per_tco);
    let quad_tco = quad.compare(&baseline).hmean(|r| r.perf_per_tco);
    if quad_tco > n2_tco {
        println!(
            "quad-emb wins: {:.0}% vs N2's {:.0}% mean Perf/TCO-$ — the extra cores \
             pay for themselves on this suite.",
            quad_tco * 100.0,
            n2_tco * 100.0
        );
    } else {
        println!(
            "N2 wins: {:.0}% vs quad-emb's {:.0}% mean Perf/TCO-$ — the scale-out \
             software tax and the costlier part eat the wider chip's gains.",
            n2_tco * 100.0,
            quad_tco * 100.0
        );
    }
}
