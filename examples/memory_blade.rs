//! Memory-blade sizing study: how much local memory does each workload
//! really need once a PCIe memory blade backs the rest?
//!
//! Sweeps the local-memory fraction and prints the slowdown each
//! workload suffers with whole-page PCIe transfers and with the
//! critical-block-first (CBF) optimization — the analysis behind the
//! paper's choice of a 25% local / 75% remote split.
//!
//! Run with `cargo run --release --example memory_blade`.

use wcs::memshare::link::RemoteLink;
use wcs::memshare::policy::PolicyKind;
use wcs::memshare::slowdown::{estimate_slowdown, SlowdownConfig};
use wcs::workloads::WorkloadId;

fn main() {
    let fractions = [0.5, 0.25, 0.125, 0.0625];

    for link in [RemoteLink::pcie_x4(), RemoteLink::pcie_x4_cbf()] {
        println!("Slowdown with {} (random replacement):", link.name);
        print!("{:<12}", "workload");
        for f in fractions {
            print!("{:>12}", format!("{:.2}% local", f * 100.0));
        }
        println!();
        for id in WorkloadId::ALL {
            print!("{:<12}", id.label());
            for f in fractions {
                let r = estimate_slowdown(
                    id,
                    &SlowdownConfig {
                        local_fraction: f,
                        link,
                        policy: PolicyKind::Random,
                        ..SlowdownConfig::paper_default()
                    },
                )
                .expect("swept fractions are in (0, 1]");
                print!("{:>11.2}%", r.slowdown * 100.0);
            }
            println!();
        }
        println!();
    }

    // The takeaway the paper draws: "a two-level memory hierarchy with a
    // first-level memory of 25% of the baseline would likely have
    // minimal performance impact".
    let worst = WorkloadId::ALL
        .iter()
        .map(|&id| {
            estimate_slowdown(
                id,
                &SlowdownConfig {
                    link: RemoteLink::pcie_x4_cbf(),
                    ..SlowdownConfig::paper_default()
                },
            )
            .expect("paper-default local fraction is valid")
            .slowdown
        })
        .fold(0.0f64, f64::max);
    println!(
        "Worst-case CBF slowdown at 25% local: {:.2}% — small enough to trade for \
         the blade's cost and power savings.",
        worst * 100.0
    );
}
