//! Flash-cache sizing: sweep the flash capacity against each workload's
//! disk stream and find the cheapest size that recovers the remote
//! laptop disk's performance loss.
//!
//! Run with `cargo run --release --example flash_cache_sizing`.

use wcs::flashcache::system::StorageSystem;
use wcs::platforms::storage::{DiskModel, FlashModel};
use wcs::workloads::disktrace::{params_for, DiskTraceGen};
use wcs::workloads::WorkloadId;

const REPLAY: u64 = 80_000;

fn mean_ms(sys: &mut StorageSystem, id: WorkloadId) -> (f64, f64) {
    let mut gen = DiskTraceGen::new(params_for(id), 0xF1A5);
    let stats = sys.replay(&mut gen, REPLAY);
    (stats.mean_service_secs() * 1e3, stats.hit_ratio())
}

fn main() {
    let sizes_gb = [0.25, 0.5, 1.0, 2.0, 4.0];

    println!("Effective disk service time (ms/IO) on the remote laptop disk, by flash size:");
    print!("{:<12} {:>9}", "workload", "no flash");
    for gb in sizes_gb {
        print!("{:>9}", format!("{gb} GB"));
    }
    println!("{:>12}", "desktop ref");

    for id in WorkloadId::ALL {
        print!("{:<12}", id.label());
        let mut bare = StorageSystem::disk_only(DiskModel::laptop_remote());
        let (ms, _) = mean_ms(&mut bare, id);
        print!(" {ms:>8.2}");
        for gb in sizes_gb {
            let mut sys =
                StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::scaled(gb));
            let (ms, _) = mean_ms(&mut sys, id);
            print!(" {ms:>8.2}");
        }
        let mut desktop = StorageSystem::disk_only(DiskModel::desktop());
        let (ms, _) = mean_ms(&mut desktop, id);
        println!("    {ms:>8.2}");
    }

    println!("\nHit ratios at the paper's 1 GB point:");
    for id in WorkloadId::ALL {
        let mut sys = StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
        let (_, hits) = mean_ms(&mut sys, id);
        println!("  {:<12} {:>5.1}%", id.label(), hits * 100.0);
    }

    // Price the break-even: the flash must beat buying back the desktop
    // disk's $40 price difference.
    println!(
        "\nAt ${}/GB, the paper's 1 GB cache costs ${:.0} — less than the $40 saved \
         by the laptop-2 disk, which is why 'Remote Laptop-2 + Flash' wins Table 3(b).",
        FlashModel::table3().price_usd,
        FlashModel::table3().price_usd
    );
}
