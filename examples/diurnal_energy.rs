//! Diurnal-load energy study: what the paper's Section 4 defers.
//!
//! The paper evaluates sustained peak load and assumes a 0.75 activity
//! factor. Here we drive the fleet with a realistic time-of-day curve
//! and ask: (1) what activity factor does the curve actually imply, and
//! (2) how much energy does ensemble-level server parking save on each
//! design?
//!
//! Run with `cargo run --release --example diurnal_energy`.

use wcs::designs::DesignPoint;
use wcs::evaluate::Evaluator;
use wcs::platforms::PlatformId;
use wcs::workloads::diurnal::{fleet_energy, DiurnalCurve};
use wcs::workloads::WorkloadId;

const PEAK_RPS: f64 = 50_000.0;

fn main() {
    let curve = DiurnalCurve::typical();
    println!(
        "Diurnal curve: trough {:.0}% of peak at {:.0}:00, peak at {:.0}:00, mean load {:.0}%",
        curve.trough * 100.0,
        (curve.peak_hour + 12.0) % 24.0,
        curve.peak_hour,
        curve.mean_load() * 100.0
    );
    println!();

    let eval = Evaluator::quick();
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>14} {:>10}",
        "design", "servers", "unmanaged kWh", "parked kWh", "proport. kWh", "implied AF"
    );
    for design in [
        DesignPoint::baseline_srvr1(),
        DesignPoint::baseline(PlatformId::Emb1),
        DesignPoint::n1(),
        DesignPoint::n2(),
    ] {
        let e = eval.evaluate(&design).expect("design evaluates");
        let rps = e.perf[&WorkloadId::Websearch];
        // Parked servers still draw ~30% (PSU, fans, idle DRAM).
        let energy = fleet_energy(&curve, PEAK_RPS, rps, e.report.power_w(), 0.30);
        println!(
            "{:<8} {:>8.0} {:>14.0} {:>14.0} {:>14.0} {:>10.2}",
            e.name,
            energy.servers,
            energy.kwh_unmanaged,
            energy.kwh_parked,
            energy.kwh_proportional,
            energy.effective_activity_factor()
        );
    }

    println!(
        "\nThe implied activity factors bracket the paper's assumed 0.75, and the \
         gap between 'parked' and 'proportional' shows what energy-proportional \
         hardware would still buy on top of ensemble parking."
    );
}
