//! `wcs` — command-line interface to the warehouse-computing suite.
//!
//! ```text
//! wcs list                     # available designs and workloads
//! wcs evaluate <design>        # per-workload perf + TCO report
//! wcs compare <design> <base>  # the paper's relative-efficiency table
//! wcs sweep-tariff <design>    # TCO vs electricity price
//! ```
//!
//! Designs: srvr1 srvr2 desk mobl emb1 emb2 n1 n2. Add `--accurate` for
//! full-accuracy simulation (slower).

use std::process::ExitCode;

use wcs::designs::DesignPoint;
use wcs::evaluate::Evaluator;
use wcs::platforms::PlatformId;
use wcs::report::render_comparison;
use wcs::tco::BurdenedParams;

fn design_by_name(name: &str) -> Option<DesignPoint> {
    match name {
        "n1" | "N1" => Some(DesignPoint::n1()),
        "n2" | "N2" => Some(DesignPoint::n2()),
        other => other.parse::<PlatformId>().ok().map(DesignPoint::baseline),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: wcs <command> [args] [--accurate]\n\
         commands:\n\
         \x20 list                      available designs and workloads\n\
         \x20 evaluate <design>         per-workload performance + TCO report\n\
         \x20 compare <design> <base>   relative-efficiency table\n\
         \x20 sweep-tariff <design>     TCO at $50-$170/MWh"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let accurate = if let Some(pos) = args.iter().position(|a| a == "--accurate") {
        args.remove(pos);
        true
    } else {
        false
    };
    let eval = if accurate {
        Evaluator::paper_default()
    } else {
        Evaluator::quick()
    };

    match args.first().map(String::as_str) {
        Some("list") => {
            println!("designs:   srvr1 srvr2 desk mobl emb1 emb2 n1 n2");
            println!("workloads: websearch webmail ytube mapred-wc mapred-wr");
            ExitCode::SUCCESS
        }
        Some("evaluate") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(design) = design_by_name(name) else {
                eprintln!("unknown design {name}");
                return ExitCode::from(2);
            };
            match eval.evaluate(&design) {
                Ok(e) => {
                    println!("{}", e.report);
                    println!("\nsustained performance:");
                    for (id, perf) in &e.perf {
                        println!("  {:<12} {perf:.2}", id.label());
                    }
                    println!("\npackaging density: {} systems/rack", e.systems_per_rack);
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("evaluation failed: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("compare") => {
            let (Some(a), Some(b)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let (Some(design), Some(base)) = (design_by_name(a), design_by_name(b)) else {
                eprintln!("unknown design name");
                return ExitCode::from(2);
            };
            match (eval.evaluate(&design), eval.evaluate(&base)) {
                (Ok(d), Ok(b)) => {
                    println!("{}", render_comparison(&d.compare(&b)));
                    ExitCode::SUCCESS
                }
                (Err(err), _) | (_, Err(err)) => {
                    eprintln!("evaluation failed: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("sweep-tariff") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(design) = design_by_name(name) else {
                eprintln!("unknown design {name}");
                return ExitCode::from(2);
            };
            println!(
                "{:<10} {:>10} {:>10} {:>10}",
                "tariff", "Inf-$", "P&C-$", "TCO-$"
            );
            for tariff in [50.0, 75.0, 100.0, 125.0, 150.0, 170.0] {
                let mut e = eval.clone();
                e.burdened = BurdenedParams::paper_default().with_tariff(tariff);
                match e.evaluate(&design) {
                    Ok(r) => println!(
                        "${:<9} {:>10.0} {:>10.0} {:>10.0}",
                        tariff,
                        r.report.inf_usd(),
                        r.report.pc_usd(),
                        r.report.total_usd()
                    ),
                    Err(err) => {
                        eprintln!("evaluation failed: {err}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
