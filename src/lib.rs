//! `wcs` — warehouse-computing server architecture suite.
//!
//! A full reproduction of *"Understanding and Designing New Server
//! Architectures for Emerging Warehouse-Computing Environments"*
//! (ISCA 2008): the benchmark suite, the cost/power/TCO models, the
//! server performance simulator, the memory-blade and flash-cache
//! substrates, the packaging/cooling models, and the unified N1/N2
//! designs.
//!
//! This facade crate re-exports every workspace crate under one roof:
//!
//! ```
//! use wcs::designs::DesignPoint;
//! use wcs::evaluate::Evaluator;
//!
//! let eval = Evaluator::quick();
//! let emb1 = eval.evaluate(&DesignPoint::baseline(wcs::platforms::PlatformId::Emb1));
//! assert!(emb1.is_ok());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/`
//! for the binaries that regenerate every table and figure of the paper.

pub use wcs_core::{
    designs, evaluate, report, scenario, ChaosPlan, DesignPoint, EvalBuilder, Evaluator,
    FamilyEval, ResilienceEval, ResilienceSpec, ScenarioEval, TrafficEval, WcsError,
};

/// Discrete-event simulation substrate (events, RNG, distributions,
/// statistics).
pub use wcs_simcore as simcore;

/// Component and platform catalog (Table 2, Figure 1, Table 3(a)).
pub use wcs_platforms as platforms;

/// Cost, power, and TCO models (Section 2.2).
pub use wcs_tco as tco;

/// The queueing-network server performance simulator.
pub use wcs_simserver as simserver;

/// The benchmark suite (Table 1) and trace generators.
pub use wcs_workloads as workloads;

/// The memory-blade substrate (Section 3.4).
pub use wcs_memshare as memshare;

/// The flash disk-cache substrate (Section 3.5).
pub use wcs_flashcache as flashcache;

/// Packaging and cooling models (Section 3.3).
pub use wcs_cooling as cooling;
